//===- sim_stats_test.cpp - SimStats counter semantics ----------------------------===//
//
// Pins the *meaning* of every SimStats counter with hand-built kernels
// whose dynamic counts are derivable on paper, across warp sizes 1, 8,
// 32 and 64 (the full supported mask range). The sim goldens
// (sim_golden_test.cpp) pin counter values for the benchmark corpus but
// say nothing about what each counter measures; the claims subsystem
// (docs/claims.md) builds invariants on these semantics, so they get
// their own suite.
//
//===----------------------------------------------------------------------===//

#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/Module.h"
#include "darm/sim/Simulator.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

/// One divergent diamond: lanes 0-3 take the true arm. With warp size
/// <= 4 the branch is dynamically uniform; wider warps split the mask.
///
/// Per-warp issue sequence (phi edge copies are free — they decode into
/// parallel copies, not issued instructions):
///   laneid, icmp            2 VALU at full mask
///   condbr                  1 branch (divergent iff WS > 4)
///   add (true arm)          1 VALU at min(4, WS) lanes
///   mul (false arm, only when divergent)   1 VALU at WS-4 lanes
///   br per executed arm     1 or 2 branches
///   gep                     1 VALU at full mask
///   store                   1 vector-memory issue
///   ret                     1 branch
const char *kDiamond = R"(func @diamond(i32 addrspace(1)* %out) -> void {
entry:
  %lane = call i32 @darm.laneid()
  %c = icmp slt i32 %lane, 4
  condbr i1 %c, label %t, label %e
t:
  %a = add i32 %lane, 1
  br label %j
e:
  %b = mul i32 %lane, 2
  br label %j
j:
  %v = phi i32 [ %a, %t ], [ %b, %e ]
  %p = gep i32 addrspace(1)* %out, i32 %lane
  store i32 %v, i32 addrspace(1)* %p
  ret
}
)";

/// LDS traffic: one shared store + one shared load per lane-private
/// cell, one global store, one barrier.
const char *kShared = R"(func @sh(i32 addrspace(1)* %out) -> void {
  shared @sh = i32[64]
entry:
  %tid = call i32 @darm.tid.x()
  %p = gep i32 addrspace(3)* @sh, i32 %tid
  store i32 %tid, i32 addrspace(3)* %p
  call void @darm.barrier()
  %v = load i32 addrspace(3)* %p
  %q = gep i32 addrspace(1)* %out, i32 %tid
  store i32 %v, i32 addrspace(1)* %q
  ret
}
)";

SimStats runStats(const char *Text, unsigned WarpSize, unsigned BlockDim) {
  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx, Text, &Err);
  EXPECT_NE(M, nullptr) << Err;
  GpuConfig Cfg;
  Cfg.WarpSize = WarpSize;
  GlobalMemory Mem;
  uint64_t Out = Mem.allocate(256 * 4, "out");
  return runKernel(*M->functions().front(), {1, BlockDim}, {Out}, Mem, Cfg);
}

TEST(SimStats, UniformWarpOfOne) {
  // WS=1: every branch is dynamically uniform; only the true arm runs.
  SimStats S = runStats(kDiamond, 1, 1);
  EXPECT_EQ(S.DivergentBranches, 0u);
  EXPECT_EQ(S.BranchesExecuted, 3u); // condbr, br(t), ret
  EXPECT_EQ(S.AluInsts, 4u);         // laneid, icmp, add, gep
  EXPECT_EQ(S.AluLanesActive, 4u);
  EXPECT_EQ(S.AluLanesTotal, 4u);
  EXPECT_EQ(S.VectorMemInsts, 1u);
  EXPECT_EQ(S.SharedMemInsts, 0u);
  EXPECT_EQ(S.InstructionsIssued, 8u);
  EXPECT_DOUBLE_EQ(S.aluUtilization(), 1.0);
}

struct DivergentCase {
  unsigned WarpSize;
  uint64_t LanesActive; // 2*WS (entry) + 4 + (WS-4) + WS (gep)
  uint64_t LanesTotal;  // 5 VALU issues * WS
};

class SimStatsDivergent : public ::testing::TestWithParam<DivergentCase> {};

TEST_P(SimStatsDivergent, OneWarpCountersAreExact) {
  const DivergentCase &C = GetParam();
  SimStats S = runStats(kDiamond, C.WarpSize, C.WarpSize);
  EXPECT_EQ(S.DivergentBranches, 1u);
  EXPECT_EQ(S.BranchesExecuted, 4u); // condbr, br(t), br(e), ret
  EXPECT_EQ(S.AluInsts, 5u);         // laneid, icmp, add, mul, gep
  EXPECT_EQ(S.AluLanesActive, C.LanesActive);
  EXPECT_EQ(S.AluLanesTotal, C.LanesTotal);
  EXPECT_EQ(S.VectorMemInsts, 1u);
  EXPECT_EQ(S.InstructionsIssued, 10u);
}

INSTANTIATE_TEST_SUITE_P(WarpSizes, SimStatsDivergent,
                         ::testing::Values(DivergentCase{8, 32u, 40u},
                                           DivergentCase{32, 128u, 160u},
                                           DivergentCase{64, 256u, 320u}),
                         [](const auto &Info) {
                           return "ws" +
                                  std::to_string(Info.param.WarpSize);
                         });

TEST(SimStats, MultiWarpBlockScalesCounters) {
  // Two warps of 8: each splits the mask once and issues independently.
  SimStats S = runStats(kDiamond, 8, 16);
  EXPECT_EQ(S.DivergentBranches, 2u);
  EXPECT_EQ(S.BranchesExecuted, 8u);
  EXPECT_EQ(S.AluInsts, 10u);
  EXPECT_EQ(S.AluLanesActive, 64u);
  EXPECT_EQ(S.AluLanesTotal, 80u);
  EXPECT_EQ(S.VectorMemInsts, 2u);
}

TEST(SimStats, SharedMemCountsLdsNotGlobal) {
  for (unsigned WS : {1u, 8u, 32u, 64u}) {
    SimStats S = runStats(kShared, WS, WS);
    EXPECT_EQ(S.SharedMemInsts, 2u) << "ws=" << WS;  // LDS store + load
    EXPECT_EQ(S.VectorMemInsts, 1u) << "ws=" << WS;  // global store only
    EXPECT_EQ(S.DivergentBranches, 0u) << "ws=" << WS;
    // tid, gep, gep are the VALU work; barrier issues but is not VALU.
    EXPECT_EQ(S.AluInsts, 3u) << "ws=" << WS;
    EXPECT_EQ(S.InstructionsIssued, 8u) << "ws=" << WS;
  }
}

TEST(SimStats, AggregationSumsEveryCounter) {
  SimStats A, B;
  for (unsigned I = 0; I < SimStats::NumCounters; ++I) {
    A.counter(I) = I + 1;
    B.counter(I) = 100 + I;
  }
  A += B;
  for (unsigned I = 0; I < SimStats::NumCounters; ++I)
    EXPECT_EQ(A.counter(I), (I + 1) + (100 + I)) << SimStats::counterName(I);
}

TEST(SimStats, CounterTableMatchesNamedFields) {
  SimStats S;
  S.Cycles = 1;
  S.TotalWarpCycles = 2;
  S.InstructionsIssued = 3;
  S.AluInsts = 4;
  S.VectorMemInsts = 5;
  S.SharedMemInsts = 6;
  S.BranchesExecuted = 7;
  S.DivergentBranches = 8;
  S.AluLanesActive = 9;
  S.AluLanesTotal = 10;
  for (unsigned I = 0; I < SimStats::NumCounters; ++I)
    EXPECT_EQ(S.counter(I), I + 1) << SimStats::counterName(I);
  // Names are non-null and unique (serialization keys).
  for (unsigned I = 0; I < SimStats::NumCounters; ++I)
    for (unsigned J = I + 1; J < SimStats::NumCounters; ++J)
      EXPECT_STRNE(SimStats::counterName(I), SimStats::counterName(J));
}

} // namespace
