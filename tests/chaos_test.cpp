//===- chaos_test.cpp - seeded fault-injection battery for the serve stack ----===//
//
// The chaos battery (docs/serving.md): sweeps hundreds of seeded
// FaultPlan schedules — short reads/writes, EINTR, ECONNRESET,
// mid-frame disconnects, slow-loris delays, ENOSPC/EIO/fsync/rename
// failures on the store — against the REAL serving stack (SocketServer
// + serve::Client + FileArtifactStore) and asserts the only observable
// outcomes are:
//
//   1. a byte-identical artifact (possibly via the verified
//      local-compile fallback),
//   2. a typed, clean error (never for our well-formed requests — the
//      client falls back instead), or
//   3. nothing at all: zero hangs (the ctest per-test timeout is the
//      global watchdog), zero aborts, zero torn store files (every
//      .drma that survives a faulted run must validate).
//
// Determinism note: plans are seeded and the per-plan workload is fixed,
// so a failing (Shard, Seed) pair replays exactly under
// --gtest_filter=... — the repro is the test id.
//
//===----------------------------------------------------------------------===//

#include "darm/serve/ArtifactStore.h"
#include "darm/serve/Client.h"
#include "darm/serve/FaultInjection.h"
#include "darm/serve/Server.h"

#include "darm/core/CompileService.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/ir/Serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

struct ChaosKey {
  CompileRequest Req;
  std::vector<uint8_t> Expect; ///< serialized in-process artifact
};

/// The per-plan workload: two small fuzz kernels, each requested twice
/// (once cold, once as a duplicate), with the byte-exact in-process
/// reference each answer must match.
const std::vector<ChaosKey> &chaosKeys() {
  static const std::vector<ChaosKey> Keys = [] {
    std::vector<ChaosKey> Ks;
    for (uint64_t Seed : {uint64_t(101), uint64_t(102)}) {
      Context Ctx;
      Module M(Ctx, "chaos");
      fuzz::FuzzCase C(Seed);
      Function *F = fuzz::buildFuzzKernel(M, C);
      ChaosKey K;
      K.Req.IRText = printFunction(*F);
      K.Expect = serializeCompiledModule(compileToArtifact(*F, DARMConfig()));
      Ks.push_back(std::move(K));
    }
    return Ks;
  }();
  return Keys;
}

std::string freshDir(const std::string &Tag) {
  std::string D = "chaos_test_" + Tag + ".dir";
  std::system(("rm -rf " + D).c_str());
  return D;
}

/// Every surviving .drma in \p Dir must be a complete, valid artifact
/// image — the "zero torn store files" gate. The atomic-write rule means
/// faults may DROP files, never tear them.
void expectNoTornStoreFiles(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return;
  while (struct dirent *E = ::readdir(D)) {
    const std::string Name = E->d_name;
    if (Name.size() <= 5 || Name.compare(Name.size() - 5, 5, ".drma") != 0)
      continue;
    std::ifstream IS(Dir + "/" + Name, std::ios::binary);
    std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(IS)),
                               std::istreambuf_iterator<char>());
    CompiledModule Art;
    std::string Err;
    EXPECT_TRUE(deserializeCompiledModule(Bytes, Art, &Err))
        << Dir << "/" << Name << " is torn: " << Err;
  }
  ::closedir(D);
}

/// One full client/daemon exchange under an installed fault plan: a
/// SocketServer over a Unix socket with frame deadlines, a resilient
/// Client with local-compile fallback, the store attached. Returns the
/// number of requests answered via fallback.
uint64_t runFaultedExchange(const std::string &SockPath,
                            const std::string &StoreDir) {
  CompileService Svc;
  FileArtifactStore Store(StoreDir);
  if (Store.valid())
    Svc.setPersistence(&Store);
  ServeCounters Counters;
  SocketServer::Options SrvOpts;
  SrvOpts.IdleTimeoutMs = 2000;
  SrvOpts.FrameTimeoutMs = 1000;
  SocketServer Server(Svc, &Counters, SrvOpts);
  std::string Err;
  const int ListenFd = listenUnixSocket(SockPath, &Err);
  EXPECT_GE(ListenFd, 0) << Err;
  EXPECT_TRUE(Server.start(ListenFd));

  ClientOptions CO;
  CO.Endpoint = SockPath;
  CO.ConnectTimeoutMs = 1000;
  CO.RequestTimeoutMs = 5000;
  CO.MaxRetries = 3;
  CO.BackoffBaseMs = 1;
  CO.BackoffCapMs = 5;
  CO.Fallback = FallbackMode::LocalCompile;
  Client Cli(CO);

  for (int Round = 0; Round < 2; ++Round) {
    for (const ChaosKey &K : chaosKeys()) {
      CompileResponse Resp;
      std::string ReqErr;
      // With LocalCompile fallback, request() ALWAYS produces a
      // definitive answer for our well-formed requests.
      const bool Answered = Cli.request(K.Req, Resp, &ReqErr);
      EXPECT_TRUE(Answered) << ReqErr;
      EXPECT_TRUE(!Answered || Resp.Ok) << Resp.Error;
      if (!Answered || !Resp.Ok)
        return Cli.counters().Fallbacks.load();
      // The only acceptable artifact is the byte-identical one —
      // whichever path (daemon, cache tier, or local fallback) answered.
      EXPECT_EQ(serializeCompiledModule(Resp.Art), K.Expect);
    }
  }
  Server.drain(/*DeadlineMs=*/3000);
  return Cli.counters().Fallbacks.load();
}

//===----------------------------------------------------------------------===//
// The battery: shards x seeds, mixed fault rates
//===----------------------------------------------------------------------===//

class ChaosBattery : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChaosBattery, EveryPlanEndsCleanOrByteIdentical) {
  const unsigned Shard = GetParam();
  const std::string Dir = freshDir("battery_" + std::to_string(Shard));
  ::mkdir(Dir.c_str(), 0777);
  constexpr unsigned PlansPerShard = 60;
  for (unsigned I = 0; I < PlansPerShard; ++I) {
    const uint64_t Seed = uint64_t(Shard) * 1000 + I;
    FaultPlan::Options PO;
    PO.Seed = Seed;
    // Sweep sparse to dense schedules: dense rates hammer the retry and
    // fallback paths, sparse ones let traffic through so the store and
    // cache tiers see real writes under occasional faults.
    PO.Rate = (I % 4 == 0) ? 0.30 : (I % 4 == 1) ? 0.10 : (I % 4 == 2) ? 0.03
                                                                       : 0.01;
    PO.MaxDelayMs = 1;
    FaultPlan Plan(PO);
    const std::string Sock = Dir + "/chaos.sock";
    const std::string StoreDir = Dir + "/store";
    {
      ScopedFaultPlan Installed(Plan);
      runFaultedExchange(Sock, StoreDir);
      if (::testing::Test::HasFailure()) {
        ADD_FAILURE() << "plan seed=" << Seed << " rate=" << PO.Rate
                      << " failed (replay with this shard/seed)";
        break;
      }
    }
    // Post-plan invariants, faults detached: no torn files on disk, and
    // a clean service over the same store still answers byte-identically
    // (whatever the faulted run left behind is valid or absent).
    expectNoTornStoreFiles(StoreDir);
  }
  std::system(("rm -rf " + Dir).c_str());
}

// 4 shards x 60 plans = 240 seeded fault schedules per run (the
// acceptance floor is 200).
INSTANTIATE_TEST_SUITE_P(Seeded, ChaosBattery, ::testing::Values(0u, 1u, 2u, 3u));

//===----------------------------------------------------------------------===//
// Store-directed chaos: ENOSPC convergence and post-fault healing
//===----------------------------------------------------------------------===//

TEST(ChaosStore, EnospcRunConvergesToCleanWarmStore) {
  // A store hammered by ENOSPC/EIO/fsync faults drops writes but never
  // corrupts. After the faults clear, the same service re-persists on
  // the next compile and a fresh service warm-starts from disk.
  const std::string Dir = freshDir("enospc");
  Context Ctx;
  Module M(Ctx, "enospc");
  fuzz::FuzzCase C(103);
  Function *F = fuzz::buildFuzzKernel(M, C);
  const std::vector<uint8_t> Expect =
      serializeCompiledModule(compileToArtifact(*F, DARMConfig()));

  {
    FaultPlan Plan(FaultPlan::Options{/*Seed=*/7, /*Rate=*/0.9,
                                      /*FaultSockets=*/false,
                                      /*FaultStore=*/true, /*MaxDelayMs=*/0});
    ScopedFaultPlan Installed(Plan);
    for (int I = 0; I < 10; ++I) {
      CompileService Svc;
      FileArtifactStore Store(Dir);
      Svc.setPersistence(&Store);
      CacheSource Src;
      auto Art = Svc.getOrCompile(*F, DARMConfig(), true, &Src);
      // Whatever the store did, the ANSWER is always right.
      EXPECT_EQ(serializeCompiledModule(*Art), Expect);
    }
  }
  expectNoTornStoreFiles(Dir);
  // Faults cleared: one clean pass persists, the next warm-starts.
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    auto Art = Svc.getOrCompile(*F, DARMConfig());
    EXPECT_EQ(serializeCompiledModule(*Art), Expect);
  }
  {
    CompileService Svc;
    FileArtifactStore Store(Dir);
    Svc.setPersistence(&Store);
    CacheSource Src = CacheSource::Compiled;
    auto Art = Svc.getOrCompile(*F, DARMConfig(), true, &Src);
    EXPECT_EQ(Src, CacheSource::DiskHit)
        << "post-fault store must converge to a clean warm start";
    EXPECT_EQ(serializeCompiledModule(*Art), Expect);
  }
  std::system(("rm -rf " + Dir).c_str());
}

TEST(ChaosStore, FaultedGcStoreStaysValidAndBounded) {
  // GC under store faults: writes may drop, but the budget holds and
  // nothing on disk is ever torn.
  const std::string Dir = freshDir("gc");
  FaultPlan Plan(FaultPlan::Options{/*Seed=*/11, /*Rate=*/0.25,
                                    /*FaultSockets=*/false,
                                    /*FaultStore=*/true, /*MaxDelayMs=*/0});
  FileArtifactStore::Options SO;
  SO.MaxBytes = 64 << 10;
  {
    ScopedFaultPlan Installed(Plan);
    FileArtifactStore Store(Dir, SO);
    ASSERT_TRUE(Store.valid());
    for (uint64_t Seed = 120; Seed < 136; ++Seed) {
      Context Ctx;
      Module M(Ctx, "gc");
      fuzz::FuzzCase C(Seed);
      Function *F = fuzz::buildFuzzKernel(M, C);
      Store.store(compileToArtifact(*F, DARMConfig()));
    }
  }
  expectNoTornStoreFiles(Dir);
  // Every survivor loads through a clean store; directory fits budget.
  FileArtifactStore After(Dir, SO);
  size_t Total = After.collectGarbage();
  EXPECT_LE(Total, SO.MaxBytes);
  std::system(("rm -rf " + Dir).c_str());
}

} // namespace
