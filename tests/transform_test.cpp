//===- transform_test.cpp - Transform utility unit tests ---------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/transform/CFGUtils.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SSAUpdater.h"
#include "darm/transform/SimplifyCFG.h"

#include <gtest/gtest.h>

using namespace darm;

namespace {

Function *parse(Context &Ctx, std::unique_ptr<Module> &Keep,
                const std::string &Text) {
  std::string Err;
  Keep = parseModule(Ctx, Text, &Err);
  EXPECT_NE(Keep, nullptr) << Err;
  return Keep ? Keep->functions().front().get() : nullptr;
}

TEST(SimplifyCFGTest, FoldsConstantBranch) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f() -> void {
entry:
  condbr i1 true, label %live, label %dead
live:
  ret
dead:
  ret
}
)");
  EXPECT_TRUE(simplifyCFG(*F));
  EXPECT_EQ(F->getNumBlocks(), 1u); // folded + merged + unreachable removed
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err;
}

TEST(SimplifyCFGTest, RemovesUnreachableCycle) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f() -> void {
entry:
  ret
deadA:
  br label %deadB
deadB:
  br label %deadA
}
)");
  EXPECT_TRUE(removeUnreachableBlocks(*F));
  EXPECT_EQ(F->getNumBlocks(), 1u);
}

TEST(SimplifyCFGTest, TrivialPhiWithUndefNeedsDominance) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // The non-undef value %x does NOT dominate the phi: must not fold.
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %t, label %j
t:
  %x = add i32 %a, 1
  br label %j
j:
  %p = phi i32 [ %x, %t ], [ undef, %entry ]
  %u = mul i32 %p, 2
  ret
}
)");
  removeTrivialPhis(*F);
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);
}

TEST(SimplifyCFGTest, SpeculateTriangleMakesSelect) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %side, label %join
side:
  %x = add i32 %a, 5
  br label %join
join:
  %p = phi i32 [ %x, %side ], [ %a, %entry ]
  ret
}
)");
  EXPECT_TRUE(speculateTriangles(*F));
  EXPECT_EQ(F->getNumBlocks(), 2u);
  bool HasSelect = false;
  for (Instruction *I : F->getEntryBlock())
    if (isa<SelectInst>(I))
      HasSelect = true;
  EXPECT_TRUE(HasSelect);
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err;
}

TEST(SimplifyCFGTest, DoesNotSpeculateStores) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a, i32 addrspace(1)* %p) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %side, label %join
side:
  store i32 %a, i32 addrspace(1)* %p
  br label %join
join:
  ret
}
)");
  EXPECT_FALSE(speculateTriangles(*F));
  EXPECT_EQ(F->getNumBlocks(), 3u);
}

TEST(SimplifyCFGTest, BooleanSelectLogicFolds) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // select(c, true, x) with a later and(not(or(c, x)), c) must collapse
  // to a constant-false branch condition.
  Function *F = parse(Ctx, M, R"(
func @f(i1 %c, i1 %x) -> void {
entry:
  %o = select i1 %c, i1 true, %x
  %n = xor i1 %o, true
  %dead = and i1 %n, %c
  condbr i1 %dead, label %a, label %b
a:
  ret
b:
  ret
}
)");
  EXPECT_TRUE(simplifyCFG(*F));
  // The whole thing folds to a single ret block.
  EXPECT_EQ(F->getNumBlocks(), 1u);
}

TEST(SimplifyCFGTest, PhiOnlyForwarderRemoved) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %l, label %r
l:
  %x = add i32 %a, 1
  br label %fwd
r:
  %y = add i32 %a, 2
  br label %fwd
fwd:
  %m = phi i32 [ %x, %l ], [ %y, %r ]
  br label %join
join:
  %p = phi i32 [ %m, %fwd ]
  ret
}
)");
  EXPECT_TRUE(removePhiOnlyForwarders(*F));
  EXPECT_EQ(F->getBlockByName("fwd"), nullptr);
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);
  // The join phi now merges x and y directly.
  PhiInst *P = F->getBlockByName("join")->phis().front();
  EXPECT_EQ(P->getNumIncoming(), 2u);
}

TEST(DCETest, RemovesDeadChains) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a) -> void {
entry:
  %d1 = add i32 %a, 1
  %d2 = mul i32 %d1, %d1
  %live = add i32 %a, 2
  %g = call i32 @darm.tid.x()
  ret
}
)");
  EXPECT_TRUE(eliminateDeadCode(*F));
  EXPECT_EQ(F->getEntryBlock().size(), 1u); // only ret remains
}

TEST(DCETest, RemovesDeadPhiCycle) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %n) -> void {
entry:
  br label %hdr
hdr:
  %deadphi = phi i32 [ 0, %entry ], [ %deadnext, %hdr ]
  %i = phi i32 [ 0, %entry ], [ %inext, %hdr ]
  %deadnext = add i32 %deadphi, 1
  %inext = add i32 %i, 1
  %c = icmp slt i32 %inext, %n
  condbr i1 %c, label %hdr, label %exit
exit:
  ret
}
)");
  EXPECT_TRUE(eliminateDeadCode(*F));
  // The dead phi cycle is gone; the live induction survives.
  EXPECT_EQ(F->getBlockByName("hdr")->phis().size(), 1u);
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err;
}

TEST(SSAUpdaterTest, InsertsUndefPhi) {
  Context Ctx;
  std::unique_ptr<Module> M;
  // Build broken-SSA on purpose: move a def into one branch arm.
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %t, label %j
t:
  %x = add i32 %a, 1
  br label %j
j:
  ret
}
)");
  // Fabricate a use of %x in %j (dominance violation), then repair.
  BasicBlock *J = F->getBlockByName("j");
  Instruction *X = nullptr;
  for (Instruction *I : *F->getBlockByName("t"))
    if (I->getName() == "x")
      X = I;
  ASSERT_NE(X, nullptr);
  IRBuilder B(Ctx);
  B.setInsertPoint(J->getTerminator());
  B.createMul(X, X, "use");
  std::string Err;
  ASSERT_FALSE(verifyFunction(*F, &Err));

  EXPECT_TRUE(repairFunctionSSA(*F));
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);
  // A phi with an undef arm was placed at the join.
  ASSERT_FALSE(J->phis().empty());
  PhiInst *P = J->phis().front();
  bool HasUndef = false;
  for (unsigned I = 0; I < P->getNumIncoming(); ++I)
    HasUndef |= isa<UndefValue>(P->getIncomingValue(I));
  EXPECT_TRUE(HasUndef);
}

TEST(SSAUpdaterTest, LoopCarriedRepair) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %n) -> void {
entry:
  br label %hdr
hdr:
  %i = phi i32 [ 0, %entry ], [ %inext, %latch ]
  %c = icmp slt i32 %i, %n
  condbr i1 %c, label %body, label %exit
body:
  %v = mul i32 %i, 3
  br label %latch
latch:
  %inext = add i32 %i, 1
  br label %hdr
exit:
  ret
}
)");
  // Use %v (defined in body) after the loop: not dominated.
  IRBuilder B(Ctx);
  Instruction *V = nullptr;
  for (Instruction *I : *F->getBlockByName("body"))
    if (I->getName() == "v")
      V = I;
  B.setInsertPoint(F->getBlockByName("exit")->getTerminator());
  B.createAdd(V, V, "after");
  std::string Err;
  ASSERT_FALSE(verifyFunction(*F, &Err));
  EXPECT_TRUE(repairFunctionSSA(*F));
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);
}

TEST(CFGUtilsTest, SplitEdgeFixesPhis) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i32 %a) -> void {
entry:
  %c = icmp sgt i32 %a, 0
  condbr i1 %c, label %j, label %o
o:
  br label %j
j:
  %p = phi i32 [ 1, %entry ], [ 2, %o ]
  ret
}
)");
  BasicBlock *E = F->getBlockByName("entry");
  BasicBlock *J = F->getBlockByName("j");
  BasicBlock *Mid = splitEdge(E, J, 0);
  ASSERT_NE(Mid, nullptr);
  EXPECT_EQ(Mid->getSingleSuccessor(), J);
  PhiInst *P = J->phis().front();
  EXPECT_EQ(P->getIncomingValueForBlock(Mid),
            Ctx.getConstantInt(Ctx.getInt32Ty(), 1));
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err;
}

TEST(CFGUtilsTest, SplitDuplicateEdge) {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = parse(Ctx, M, R"(
func @f(i1 %c) -> void {
entry:
  condbr i1 %c, label %j, label %j
j:
  %p = phi i32 [ 7, %entry ]
  ret
}
)");
  BasicBlock *E = F->getBlockByName("entry");
  BasicBlock *J = F->getBlockByName("j");
  splitEdge(E, J, 0);
  std::string Err;
  EXPECT_TRUE(verifyFunction(*F, &Err)) << Err << printFunction(*F);
  EXPECT_EQ(J->phis().front()->getNumIncoming(), 2u);
}

} // namespace
