//===- bitonic_sort.cpp - The paper's running example as an application ------------===//
//
// Sorts per-block buckets with the bitonic network of Fig. 1, comparing
// the baseline kernel against its DARM-melded version: same sorted output,
// fewer serialized divergent paths, fewer LDS instructions issued.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"

#include <cstdio>

using namespace darm;

int main(int argc, char **argv) {
  unsigned BlockSize = 128;
  if (argc > 1)
    BlockSize = static_cast<unsigned>(std::atoi(argv[1]));
  if (BlockSize < 32 || BlockSize > 1024 ||
      (BlockSize & (BlockSize - 1)) != 0) {
    std::fprintf(stderr,
                 "usage: %s [block-size]   (power of two, 32..1024)\n",
                 argv[0]);
    return 1;
  }

  auto Bench = createBenchmark("BIT", BlockSize);
  std::printf("bitonic sort: %u buckets of %u elements\n",
              Bench->launch().GridDimX, BlockSize);

  Context Ctx;
  Module M(Ctx, "bitonic");
  Function *Base = Bench->build(M);
  Function *Melded = Bench->build(M);
  DARMStats DS;
  runDARM(*Melded, DARMConfig(), &DS);
  std::string Err;
  if (!verifyFunction(*Melded, &Err)) {
    std::fprintf(stderr, "verification failed: %s\n", Err.c_str());
    return 1;
  }

  SimStats SBase, SMeld;
  std::string Why;
  if (!runAndValidate(*Bench, *Base, SBase, &Why) ||
      !runAndValidate(*Bench, *Melded, SMeld, &Why)) {
    std::fprintf(stderr, "wrong results: %s\n", Why.c_str());
    return 1;
  }

  std::printf("\n                      %12s %12s\n", "baseline", "DARM");
  std::printf("cycles                %12llu %12llu\n",
              (unsigned long long)SBase.Cycles,
              (unsigned long long)SMeld.Cycles);
  std::printf("divergent branches    %12llu %12llu\n",
              (unsigned long long)SBase.DivergentBranches,
              (unsigned long long)SMeld.DivergentBranches);
  std::printf("LDS instructions      %12llu %12llu\n",
              (unsigned long long)SBase.SharedMemInsts,
              (unsigned long long)SMeld.SharedMemInsts);
  std::printf("ALU utilization       %11.1f%% %11.1f%%\n",
              SBase.aluUtilization() * 100, SMeld.aluUtilization() * 100);
  std::printf("\nall buckets sorted correctly; speedup %.2fx "
              "(%u region(s) melded)\n",
              static_cast<double>(SBase.Cycles) /
                  static_cast<double>(SMeld.Cycles),
              DS.RegionsMelded);
  return 0;
}
