//===- image_quantize.cpp - DCT-plane quantization pipeline ------------------------===//
//
// A small "codec" scenario built on the public API: quantize a DCT
// coefficient plane (sign-dependent rounding, the paper's DCT benchmark),
// then de-quantize and report the reconstruction error — once with the
// baseline kernel, once with the DARM-melded kernel. Both must agree
// bit-for-bit; the melded one retires the divergent sign branch.
//
//===----------------------------------------------------------------------===//

#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/Module.h"
#include "darm/sim/Simulator.h"
#include "darm/support/RNG.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace darm;

namespace {

/// plane[i] = sign-aware round(plane[i] / q); the divergent region has no
/// memory operations — DARM melds the two sdiv arms (Fig. 11 discussion).
Function *buildQuantizeKernel(Module &M) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.getInt32Ty();
  Type *Ptr = Ctx.getPointerTy(I32, AddressSpace::Global);
  Function *F = M.createFunction("quantize", Ctx.getVoidTy(),
                                 {{Ptr, "plane"}, {I32, "q"}});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Pos = F->createBlock("pos");
  BasicBlock *Neg = F->createBlock("neg");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(Ctx, Entry);
  Value *Gid = B.createAdd(
      B.createMul(B.createBlockIdX(), B.createBlockDimX()),
      B.createThreadIdX(), "gid");
  Value *V = B.createLoadAt(F->getArg(0), Gid, "v");
  Value *Q = F->getArg(1);
  Value *Half = B.createAShr(Q, B.getInt32(1), "half");
  B.createCondBr(B.createICmp(ICmpPred::SGT, V, B.getInt32(0)), Pos, Neg);
  B.setInsertPoint(Pos);
  Value *RP = B.createSDiv(B.createAdd(V, Half), Q, "rp");
  B.createBr(Join);
  B.setInsertPoint(Neg);
  Value *RN = B.createSDiv(B.createSub(V, Half), Q, "rn");
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiInst *R = B.createPhi(I32, "r");
  R->addIncoming(RP, Pos);
  R->addIncoming(RN, Neg);
  B.createStoreAt(R, F->getArg(0), Gid);
  B.createRet();
  return F;
}

std::vector<int32_t> makePlane(unsigned N) {
  // A synthetic DCT plane: large DC-ish terms early, small noisy tails.
  std::vector<int32_t> P(N);
  RNG Rng(1234);
  for (unsigned I = 0; I < N; ++I) {
    double Falloff = 2000.0 / (1.0 + (I % 64));
    P[I] = static_cast<int32_t>((Rng.nextFloat() - 0.5) * 2 * Falloff);
  }
  return P;
}

std::vector<int32_t> runQuantize(Function &F, const std::vector<int32_t> &In,
                                 int32_t Q, SimStats &Stats) {
  GlobalMemory Mem;
  uint64_t Plane = Mem.allocate(In.size() * 4);
  Mem.fillI32(Plane, In);
  unsigned Block = 256;
  Stats = runKernel(F, {static_cast<unsigned>(In.size()) / Block, Block},
                    {Plane, static_cast<uint64_t>(Q)}, Mem);
  return Mem.dumpI32(Plane, In.size());
}

} // namespace

int main() {
  const unsigned N = 4096;
  const int32_t Q = 17;
  std::vector<int32_t> Plane = makePlane(N);

  Context Ctx;
  Module M(Ctx, "quant");
  Function *Base = buildQuantizeKernel(M);
  Function *Melded = buildQuantizeKernel(M);
  runDARM(*Melded);

  SimStats SB, SM;
  std::vector<int32_t> QBase = runQuantize(*Base, Plane, Q, SB);
  std::vector<int32_t> QMeld = runQuantize(*Melded, Plane, Q, SM);
  if (QBase != QMeld) {
    std::fprintf(stderr, "melded kernel changed the quantized plane!\n");
    return 1;
  }

  // Reconstruction error of the (identical) quantized planes.
  double Mse = 0;
  for (unsigned I = 0; I < N; ++I) {
    double D = static_cast<double>(Plane[I]) -
               static_cast<double>(QBase[I]) * Q;
    Mse += D * D;
  }
  Mse /= N;

  std::printf("quantized %u coefficients with q=%d\n", N, Q);
  std::printf("reconstruction RMSE       : %.2f (identical for both)\n",
              std::sqrt(Mse));
  std::printf("baseline: %llu cycles, %llu divergent branches\n",
              (unsigned long long)SB.Cycles,
              (unsigned long long)SB.DivergentBranches);
  std::printf("DARM    : %llu cycles, %llu divergent branches\n",
              (unsigned long long)SM.Cycles,
              (unsigned long long)SM.DivergentBranches);
  std::printf("speedup : %.2fx\n", static_cast<double>(SB.Cycles) /
                                       static_cast<double>(SM.Cycles));
  return 0;
}
