//===- quickstart.cpp - Build, meld, and simulate a divergent kernel --------------===//
//
// The five-minute tour of the library:
//   1. build a divergent GPU kernel with IRBuilder,
//   2. inspect its CFG,
//   3. run the DARM control-flow melding pass,
//   4. execute both versions on the SIMT simulator,
//   5. compare results and divergence counters.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRBuilder.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/sim/Simulator.h"

#include <cstdio>

using namespace darm;

/// out[i] = 3*|a[i] - b[i]| + 7, written with a data-dependent branch:
/// the two arms run the same sub/mul/add chain on swapped operands, so
/// DARM melds them into one chain fed by selects and the branch is gone.
static Function *buildAbsDiff(Module &M) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.getInt32Ty();
  Type *Ptr = Ctx.getPointerTy(I32, AddressSpace::Global);
  Function *F = M.createFunction(
      "absdiff", Ctx.getVoidTy(), {{Ptr, "a"}, {Ptr, "b"}, {Ptr, "out"}});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Ge = F->createBlock("ge");
  BasicBlock *Lt = F->createBlock("lt");
  BasicBlock *Join = F->createBlock("join");

  IRBuilder B(Ctx, Entry);
  Value *Tid = B.createThreadIdX();
  Value *Gid = B.createAdd(
      B.createMul(B.createBlockIdX(), B.createBlockDimX()), Tid, "gid");
  Value *A = B.createLoadAt(F->getArg(0), Gid, "av");
  Value *Bv = B.createLoadAt(F->getArg(1), Gid, "bv");
  Value *C = B.createICmp(ICmpPred::SGE, A, Bv, "c");
  B.createCondBr(C, Ge, Lt);

  B.setInsertPoint(Ge);
  Value *D1 = B.createAdd(B.createMul(B.createSub(A, Bv), B.getInt32(3)),
                          B.getInt32(7), "d1");
  B.createBr(Join);
  B.setInsertPoint(Lt);
  Value *D2 = B.createAdd(B.createMul(B.createSub(Bv, A), B.getInt32(3)),
                          B.getInt32(7), "d2");
  B.createBr(Join);

  B.setInsertPoint(Join);
  PhiInst *R = B.createPhi(I32, "r");
  R->addIncoming(D1, Ge);
  R->addIncoming(D2, Lt);
  B.createStoreAt(R, F->getArg(2), Gid);
  B.createRet();
  return F;
}

static SimStats simulate(Function &F, const char *Tag) {
  const unsigned N = 256;
  GlobalMemory Mem;
  uint64_t A = Mem.allocate(N * 4);
  uint64_t Bb = Mem.allocate(N * 4);
  uint64_t Out = Mem.allocate(N * 4);
  for (unsigned I = 0; I < N; ++I) {
    Mem.writeI32(A + I * 4, static_cast<int32_t>(I * 37 % 1000));
    Mem.writeI32(Bb + I * 4, static_cast<int32_t>(I * 53 % 1000));
  }
  SimStats S = runKernel(F, {N / 64, 64}, {A, Bb, Out}, Mem);
  // Spot-check results.
  for (unsigned I = 0; I < N; ++I) {
    int32_t X = static_cast<int32_t>(I * 37 % 1000);
    int32_t Y = static_cast<int32_t>(I * 53 % 1000);
    int32_t Want = 3 * (X >= Y ? X - Y : Y - X) + 7;
    if (Mem.readI32(Out + I * 4) != Want) {
      std::printf("!! %s produced a wrong value at %u\n", Tag, I);
      return S;
    }
  }
  std::printf("[%s] cycles=%llu  divergent-branches=%llu  "
              "ALU-utilization=%.1f%%  (results correct)\n",
              Tag, static_cast<unsigned long long>(S.Cycles),
              static_cast<unsigned long long>(S.DivergentBranches),
              S.aluUtilization() * 100);
  return S;
}

int main() {
  Context Ctx;
  Module M(Ctx, "quickstart");
  Function *F = buildAbsDiff(M);

  std::printf("==== kernel before DARM ====\n%s\n",
              printFunction(*F).c_str());
  SimStats Before = simulate(*F, "baseline");

  DARMStats DS;
  runDARM(*F, DARMConfig(), &DS);
  std::string Err;
  if (!verifyFunction(*F, &Err)) {
    std::printf("verification failed: %s\n", Err.c_str());
    return 1;
  }
  std::printf("\n==== kernel after DARM (%u subgraph pair(s) melded, "
              "%u selects) ====\n%s\n",
              DS.SubgraphPairsMelded, DS.SelectsInserted,
              printFunction(*F).c_str());
  SimStats After = simulate(*F, "DARM");

  std::printf("\nspeedup: %.2fx\n",
              static_cast<double>(Before.Cycles) /
                  static_cast<double>(After.Cycles));
  return 0;
}
