//===- fig9_realworld.cpp - Figure 9: real-world benchmark speedups ---------------===//
//
// Regenerates Fig. 9: DARM and Branch Fusion speedups over the -O3
// baseline for the seven real-world kernels across block sizes; "+" marks
// the block size with the best baseline runtime. GM is DARM's geomean
// over all configurations, GM-Best over the best-baseline configurations
// (paper: 1.15x / 1.16x).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/kernels/Benchmark.h"

#include <cstdio>
#include <limits>

using namespace darm;
using namespace darm::bench;

int main() {
  std::printf("=== Figure 9: real-world benchmark performance "
              "(speedup over baseline) ===\n\n");
  printRow({"benchmark", "block", "base cyc", "DARM", "BF", "best?"});

  std::vector<double> All, Best;
  for (const std::string &Name : realBenchmarkNames()) {
    std::vector<unsigned> Sizes = paperBlockSizes(Name);
    std::vector<RunResult> Bases, Darms, Bfs;
    unsigned BestIdx = 0;
    uint64_t BestCycles = std::numeric_limits<uint64_t>::max();
    for (size_t I = 0; I < Sizes.size(); ++I) {
      Bases.push_back(runCell(Name, Sizes[I], Pipeline::Baseline));
      Darms.push_back(runCell(Name, Sizes[I], Pipeline::DARM));
      Bfs.push_back(runCell(Name, Sizes[I], Pipeline::BranchFusion));
      if (Bases.back().Stats.Cycles < BestCycles) {
        BestCycles = Bases.back().Stats.Cycles;
        BestIdx = static_cast<unsigned>(I);
      }
    }
    for (size_t I = 0; I < Sizes.size(); ++I) {
      double SD = static_cast<double>(Bases[I].Stats.Cycles) /
                  static_cast<double>(Darms[I].Stats.Cycles);
      double SB = static_cast<double>(Bases[I].Stats.Cycles) /
                  static_cast<double>(Bfs[I].Stats.Cycles);
      All.push_back(SD);
      if (I == BestIdx)
        Best.push_back(SD);
      char SDs[32], SBs[32];
      std::snprintf(SDs, sizeof(SDs), "%.2fx", SD);
      std::snprintf(SBs, sizeof(SBs), "%.2fx", SB);
      printRow({Name, sizeLabel(Name, Sizes[I]),
                std::to_string(Bases[I].Stats.Cycles), SDs, SBs,
                I == BestIdx ? "+" : ""});
    }
  }
  std::printf("\n");
  std::printf("GM (all)  : %.2fx   [paper: 1.15x]\n", geomean(All));
  std::printf("GM (best) : %.2fx   [paper: 1.16x]\n", geomean(Best));
  return 0;
}
