//===- sweep_throughput.cpp - Sweep-engine throughput harness ---------------------===//
//
// Measures the throughput of the two nightly sweep drivers — the
// differential fuzz oracle (seeds/sec) and the claims corpus runner
// (cells/sec) — single-threaded and fanned over the in-process worker
// pool (support/Parallel.h, docs/performance.md), so the parallel sweep
// engine's scaling is tracked per commit the same way sim_throughput
// tracks the simulator.
//
// Emits machine-readable JSON (schema darm-sweep-throughput-v1):
//
//   sweep_throughput [--seeds N] [--jobs N] [--out FILE]
//
// Every jobs>1 run re-verifies its results against the jobs=1 run
// (findings list and claims aggregate must be byte-identical), so a
// fast-but-nondeterministic sweep engine can never report a score.
//
//===----------------------------------------------------------------------===//

#include "darm/check/CorpusRunner.h"
#include "darm/check/GoldenStore.h"
#include "darm/fuzz/DiffOracle.h"
#include "darm/support/ErrorHandling.h"
#include "darm/support/Parallel.h"
#include "darm/support/Shards.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

using namespace darm;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepCell {
  const char *Sweep; ///< "fuzz" or "corpus"
  unsigned Jobs = 1;
  uint64_t Items = 0;
  double Seconds = 0;
  double ItemsPerSec() const { return Seconds > 0 ? Items / Seconds : 0; }
};

/// One fuzz sweep over [0, NumSeeds); returns the finding fingerprint so
/// parallel runs can be checked against the sequential one.
SweepCell runFuzzSweep(unsigned Jobs, uint64_t NumSeeds,
                       std::string &Findings) {
  std::vector<uint64_t> Seeds(NumSeeds);
  std::iota(Seeds.begin(), Seeds.end(), uint64_t{0});
  fuzz::OracleOptions Opts;
  Opts.Minimize = false; // measure the sweep, not the (rare) shrink
  ThreadPool Pool(Jobs);
  Findings.clear();
  SweepCell C{"fuzz", Jobs, NumSeeds, 0};
  const double T0 = now();
  fuzz::sweepSeeds(Pool, Seeds, Opts,
                   [&](uint64_t Seed, const fuzz::OracleResult &R) {
                     if (R.Mismatch)
                       Findings += std::to_string(Seed) + ":" + R.Config +
                                   ":" + R.Detail + "\n";
                     return true;
                   });
  C.Seconds = now() - T0;
  return C;
}

/// One corpus measurement over every benchmark cell; returns the
/// serialized claims so parallel runs can be checked.
SweepCell runCorpusSweep(unsigned Jobs, std::string &Json) {
  const std::vector<check::BenchCell> Cells = check::benchmarkCorpus();
  ThreadPool Pool(Jobs);
  SweepCell C{"corpus", Jobs, Cells.size(), 0};
  const double T0 = now();
  check::GoldenFile G;
  G.Kernels = check::measureCorpus(Pool, Cells, {});
  C.Seconds = now() - T0;
  Json = check::toJson(G);
  return C;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t NumSeeds = 200;
  unsigned Jobs = hardwareParallelism();
  const char *OutPath = nullptr;
  bool Usage = false;
  for (int I = 1; I < argc && !Usage; ++I) {
    if (!std::strcmp(argv[I], "--seeds") && I + 1 < argc) {
      // Same strictness as parseJobs: digits only, no silent garbage,
      // and a sane cap (also rejecting strtoull's overflow saturation).
      const char *V = argv[++I];
      char *End = nullptr;
      NumSeeds = std::strtoull(V, &End, 10);
      if (*V < '0' || *V > '9' || *End != '\0' || NumSeeds == 0 ||
          NumSeeds > 100'000'000)
        Usage = true;
    } else if (!std::strcmp(argv[I], "--jobs") && I + 1 < argc) {
      if (!parseJobs(argv[++I], Jobs))
        Usage = true;
    } else if (!std::strcmp(argv[I], "--out") && I + 1 < argc) {
      OutPath = argv[++I];
    } else {
      Usage = true;
    }
  }
  if (Usage) {
    std::fprintf(stderr, "usage: %s [--seeds N>=1] [--jobs N>=1] [--out FILE]\n",
                 argv[0]);
    return 2;
  }

  std::vector<SweepCell> Cells;
  std::string Findings1, FindingsN, Json1, JsonN;
  Cells.push_back(runFuzzSweep(1, NumSeeds, Findings1));
  Cells.push_back(runCorpusSweep(1, Json1));
  if (Jobs > 1) {
    Cells.push_back(runFuzzSweep(Jobs, NumSeeds, FindingsN));
    Cells.push_back(runCorpusSweep(Jobs, JsonN));
    // A parallel sweep that reports different results than the
    // sequential one must never publish a throughput number.
    if (FindingsN != Findings1)
      reportFatalError("parallel fuzz sweep diverged from --jobs 1");
    if (JsonN != Json1)
      reportFatalError("parallel corpus sweep diverged from --jobs 1");
  }

  const double FuzzSpeedup =
      Jobs > 1 && Cells[2].Seconds > 0 ? Cells[0].Seconds / Cells[2].Seconds
                                       : 1.0;
  const double CorpusSpeedup =
      Jobs > 1 && Cells[3].Seconds > 0 ? Cells[1].Seconds / Cells[3].Seconds
                                       : 1.0;

  FILE *Out = stdout;
  if (OutPath) {
    Out = std::fopen(OutPath, "w");
    if (!Out)
      reportFatalError("cannot open --out file for writing");
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"darm-sweep-throughput-v1\",\n");
  std::fprintf(Out, "  \"jobs\": %u,\n", Jobs);
  std::fprintf(Out, "  \"fuzz_seeds\": %llu,\n",
               static_cast<unsigned long long>(NumSeeds));
  std::fprintf(Out, "  \"cells\": [\n");
  for (size_t I = 0; I < Cells.size(); ++I) {
    const SweepCell &C = Cells[I];
    std::fprintf(Out,
                 "    {\"sweep\": \"%s\", \"jobs\": %u, \"items\": %llu, "
                 "\"seconds\": %.6f, \"items_per_sec\": %.3f}%s\n",
                 C.Sweep, C.Jobs, static_cast<unsigned long long>(C.Items),
                 C.Seconds, C.ItemsPerSec(),
                 I + 1 < Cells.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"fuzz_seeds_per_sec_jobs1\": %.3f,\n",
               Cells[0].ItemsPerSec());
  std::fprintf(Out, "  \"corpus_cells_per_sec_jobs1\": %.3f,\n",
               Cells[1].ItemsPerSec());
  std::fprintf(Out, "  \"fuzz_speedup\": %.3f,\n", FuzzSpeedup);
  std::fprintf(Out, "  \"corpus_speedup\": %.3f\n", CorpusSpeedup);
  std::fprintf(Out, "}\n");
  if (OutPath)
    std::fclose(Out);

  std::fprintf(stderr,
               "sweep_throughput: fuzz %.1f seeds/sec, corpus %.1f cells/sec "
               "at jobs=1; speedup x%.2f / x%.2f at jobs=%u\n",
               Cells[0].ItemsPerSec(), Cells[1].ItemsPerSec(), FuzzSpeedup,
               CorpusSpeedup, Jobs);
  return 0;
}
