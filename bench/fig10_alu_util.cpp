//===- fig10_alu_util.cpp - Figure 10: ALU utilization ----------------------------===//
//
// Regenerates Fig. 10: VALU lane utilization (%) for O3 / DARM / BF on
// each real-world benchmark, at the block size where DARM's improvement
// over the baseline is largest (§VI-B: "we focus on the block sizes where
// DARM has highest improvement").
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/kernels/Benchmark.h"

#include <cstdio>

using namespace darm;
using namespace darm::bench;

int main() {
  std::printf("=== Figure 10: ALU utilization (%%) ===\n\n");
  printRow({"benchmark", "block", "O3", "DARM", "BF"});

  for (const std::string &Name : realBenchmarkNames()) {
    // Pick the block size with the largest DARM improvement.
    unsigned BestBS = 0;
    double BestSpeed = 0;
    for (unsigned BS : paperBlockSizes(Name)) {
      RunResult Base = runCell(Name, BS, Pipeline::Baseline);
      RunResult Darm = runCell(Name, BS, Pipeline::DARM);
      double S = static_cast<double>(Base.Stats.Cycles) /
                 static_cast<double>(Darm.Stats.Cycles);
      if (S > BestSpeed) {
        BestSpeed = S;
        BestBS = BS;
      }
    }
    RunResult Base = runCell(Name, BestBS, Pipeline::Baseline);
    RunResult Darm = runCell(Name, BestBS, Pipeline::DARM);
    RunResult Bf = runCell(Name, BestBS, Pipeline::BranchFusion);
    char C1[32], C2[32], C3[32];
    std::snprintf(C1, sizeof(C1), "%.1f", Base.Stats.aluUtilization() * 100);
    std::snprintf(C2, sizeof(C2), "%.1f", Darm.Stats.aluUtilization() * 100);
    std::snprintf(C3, sizeof(C3), "%.1f", Bf.Stats.aluUtilization() * 100);
    printRow({Name, sizeLabel(Name, BestBS), C1, C2, C3});
  }
  std::printf("\nExpected shape: DARM >= BF >= O3 on divergent kernels "
              "(paper Fig. 10).\n");
  return 0;
}
