//===- BenchCommon.cpp - Shared harness for paper-figure benches ------------------===//

#include "BenchCommon.h"

#include "darm/core/DARMPass.h"
#include "darm/core/TailMerge.h"
#include "darm/ir/Context.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/support/ErrorHandling.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#include <chrono>
#include <cmath>
#include <cstdio>

using namespace darm;
using namespace darm::bench;

const char *darm::bench::pipelineName(Pipeline P) {
  switch (P) {
  case Pipeline::Baseline:
    return "O3";
  case Pipeline::TailMerge:
    return "TM";
  case Pipeline::BranchFusion:
    return "BF";
  case Pipeline::DARM:
    return "DARM";
  }
  return "?";
}

RunResult darm::bench::runCell(const std::string &Bench, unsigned BlockSize,
                               Pipeline P, double Threshold) {
  auto B = createBenchmark(Bench, BlockSize);
  if (!B)
    reportFatalError("unknown benchmark name");

  Context Ctx;
  Module M(Ctx, Bench);
  Function *F = B->build(M);

  RunResult R;
  auto Start = std::chrono::steady_clock::now();
  switch (P) {
  case Pipeline::Baseline:
    break;
  case Pipeline::TailMerge:
    R.Changed = runTailMerge(*F);
    break;
  case Pipeline::BranchFusion:
    R.Changed = runBranchFusion(*F, &R.Melding);
    break;
  case Pipeline::DARM: {
    DARMConfig Cfg;
    Cfg.ProfitThreshold = Threshold;
    R.Changed = runDARM(*F, Cfg, &R.Melding);
    break;
  }
  }
  // Every pipeline (including the baseline) gets the standard -O3-style
  // cleanup, mirroring the paper's setup where DARM is inserted into the
  // existing HIPCC -O3 pipeline (§V).
  bool Cleaned = simplifyCFG(*F);
  Cleaned |= eliminateDeadCode(*F);
  R.Changed |= (P == Pipeline::Baseline ? false : Cleaned);
  auto End = std::chrono::steady_clock::now();
  R.CompileSeconds = std::chrono::duration<double>(End - Start).count();

  std::string Why;
  R.Valid = runAndValidate(*B, *F, R.Stats, &Why);
  if (!R.Valid) {
    std::fprintf(stderr, "VALIDATION FAILED: %s bs=%u pipeline=%s: %s\n",
                 Bench.c_str(), BlockSize, pipelineName(P), Why.c_str());
    reportFatalError("benchmark produced wrong results");
  }
  return R;
}

double darm::bench::geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double LogSum = 0;
  for (double X : Xs)
    LogSum += std::log(X);
  return std::exp(LogSum / static_cast<double>(Xs.size()));
}

std::string darm::bench::sizeLabel(const std::string &Bench,
                                   unsigned BlockSize) {
  if (Bench == "SRAD")
    return BlockSize == 256 ? "16x16" : "32x32";
  if (Bench == "DCT") {
    if (BlockSize == 16)
      return "4x4";
    if (BlockSize == 64)
      return "8x8";
    return "16x16";
  }
  return std::to_string(BlockSize);
}

void darm::bench::printRow(const std::vector<std::string> &Cells) {
  for (size_t I = 0; I < Cells.size(); ++I)
    std::printf(I == 0 ? "%-16s" : "%14s", Cells[I].c_str());
  std::printf("\n");
}
