//===- table1_capability.cpp - Table I: capability comparison ---------------------===//
//
// Regenerates Table I: which technique can meld which control-flow /
// instruction pattern. A technique "handles" a pattern if running it on
// the representative synthetic kernel removes at least one divergent
// branch at runtime (and still validates).
//
//   diamond + identical sequences  -> SB1   (TM yes, BF yes, DARM yes)
//   diamond + distinct sequences   -> SB1R  (TM no,  BF yes, DARM yes)
//   complex control flow           -> SB2   (TM no,  BF no,  DARM yes)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace darm;
using namespace darm::bench;

namespace {

/// A technique handles the pattern if it cuts dynamic divergent branches.
bool handles(const std::string &Bench, Pipeline P) {
  RunResult Base = runCell(Bench, 64, Pipeline::Baseline);
  RunResult After = runCell(Bench, 64, P);
  return After.Stats.DivergentBranches < Base.Stats.DivergentBranches;
}

} // namespace

int main() {
  std::printf("=== Table I: divergence-reduction capability ===\n\n");
  printRow({"pattern", "TailMerge", "BranchFusion", "DARM"});

  struct RowSpec {
    const char *Label;
    const char *Bench;
  };
  const RowSpec Rows[] = {
      {"diamond+ident", "SB1"},
      {"diamond+dist", "SB1R"},
      {"complex CF", "SB2"},
      {"complex CF 2", "SB3"},
  };
  const Pipeline Pipes[] = {Pipeline::TailMerge, Pipeline::BranchFusion,
                            Pipeline::DARM};
  for (const RowSpec &Row : Rows) {
    std::vector<std::string> Cells = {Row.Label};
    for (Pipeline P : Pipes)
      Cells.push_back(handles(Row.Bench, P) ? "yes" : "no");
    printRow(Cells);
  }
  std::printf("\nPaper Table I: tail merging handles only identical "
              "diamonds; branch fusion adds distinct diamonds; DARM "
              "handles complex control flow too.\n");
  return 0;
}
