//===- BenchCommon.h - Shared harness for paper-figure benches ------*- C++ -*-===//
///
/// \file
/// Builds a benchmark kernel, applies one of the compared pipelines
/// (baseline -O3 / tail merging / branch fusion / DARM), simulates it and
/// validates against the host reference. Every figure/table binary in
/// bench/ goes through this harness so numbers are produced identically.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_BENCH_BENCHCOMMON_H
#define DARM_BENCH_BENCHCOMMON_H

#include "darm/core/DARMConfig.h"
#include "darm/sim/GpuConfig.h"

#include <string>
#include <vector>

namespace darm {
namespace bench {

enum class Pipeline { Baseline, TailMerge, BranchFusion, DARM };

const char *pipelineName(Pipeline P);

struct RunResult {
  SimStats Stats;
  DARMStats Melding;
  bool Changed = false; ///< did the pipeline modify the kernel?
  bool Valid = false;   ///< host-reference validation
  double CompileSeconds = 0.0;
};

/// Runs one (benchmark, block size, pipeline) cell. Aborts the process on
/// validation failure — a figure produced from wrong results is worse
/// than no figure.
RunResult runCell(const std::string &Bench, unsigned BlockSize, Pipeline P,
                  double Threshold = 0.2);

/// Geometric mean.
double geomean(const std::vector<double> &Xs);

/// Paper-style size label ("16x16" for SRAD 256, "4x4" for DCT 16, plain
/// block size otherwise).
std::string sizeLabel(const std::string &Bench, unsigned BlockSize);

/// Prints an aligned row: first column width 14, others width 12.
void printRow(const std::vector<std::string> &Cells);

} // namespace bench
} // namespace darm

#endif // DARM_BENCH_BENCHCOMMON_H
