//===- sim_throughput.cpp - Simulator throughput harness --------------------------===//
//
// Measures the simulator's own speed — simulated instructions per wall
// second — over the fig8 synthetic suite (SB1-SB4 and -R variants at the
// paper block sizes, baseline and DARM pipelines). Unlike the figure
// harnesses, the metric here is host throughput, not simulated cycles: it
// bounds how many kernels, configs, and grid sizes every other harness
// can sweep.
//
// Emits machine-readable JSON (stdout or --out FILE) so CI can track the
// number per commit:
//
//   sim_throughput [--repeat N] [--pipeline baseline|darm|both]
//                  [--dispatch default|switch|threaded] [--jobs N]
//                  [--cache] [--out FILE] [--compare BASELINE.json]
//
// Each cell decodes its kernel once (SimEngine) and replays it N times;
// results are host-validated on the first repeat so a fast-but-wrong
// simulator can never report a score. --cache compiles every cell
// through a shared CompileService and adopts the artifact's serialized
// DecodedProgram image (docs/caching.md) — the production deserialized-
// engine path — instead of melding + decoding in place; the timed replay
// loop is identical either way, so scores stay commit-comparable and the
// counters (instructions, sim_cycles) must not move at all. A CACHE
// summary line goes to stderr. --jobs fans the cells over the
// in-process pool (support/Parallel.h); each cell still times its own
// wall seconds, but contention inflates them, so the default stays 1
// (the tracked trajectory is single-thread) and parallelism is opt-in.
//
// Schema v2 adds the superblock-trace telemetry (traces formed at
// decode, average blocks fused per trace, the fraction of dynamic
// instructions retired through the trace path) and the resolved
// dispatch mode, so CI can see trace-path coverage move, not just the
// headline number. --compare reads a previously recorded JSON (v1 or
// v2) and exits nonzero when throughput regressed by more than 10% —
// the CI gate.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/core/CompileService.h"
#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/sim/DecodedProgram.h"
#include "darm/sim/Simulator.h"
#include "darm/support/ErrorHandling.h"
#include "darm/support/Parallel.h"
#include "darm/support/Shards.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace darm;
using namespace darm::bench;

namespace {

struct Cell {
  std::string Benchmark;
  unsigned BlockSize = 0;
  const char *Pipeline = "";
  uint64_t Instructions = 0;
  uint64_t SimCycles = 0;
  double Seconds = 0;
  // Trace telemetry (schema v2): static shape from the decoder, dynamic
  // coverage from EngineStats summed over the repeats.
  uint64_t TracesFormed = 0;    ///< traces the decoder fused (static)
  uint64_t TraceBlocks = 0;     ///< blocks covered by those traces
  uint64_t TraceRuns = 0;       ///< dynamic trace dispatches
  uint64_t TraceInstrs = 0;     ///< dynamic instrs retired via traces
  uint64_t BatchedTraceInstrs = 0; ///< subset retired op-major
  const char *Dispatch = "";    ///< resolved executor ("threaded"/"switch")
};

Cell runThroughputCell(const std::string &Name, unsigned BS, bool Meld,
                       unsigned Repeat, SimDispatch Dispatch,
                       CompileService *Cache) {
  auto B = createBenchmark(Name, BS);
  if (!B)
    reportFatalError("unknown benchmark name");

  Context Ctx;
  Module M(Ctx, Name);
  Function *F = B->build(M);

  Cell C;
  C.Benchmark = Name;
  C.BlockSize = BS;
  C.Pipeline = Meld ? "darm" : "baseline";

  GpuConfig GC;
  GC.Dispatch = Dispatch;
  // Engine construction (compile + decode) stays outside the timed
  // region either way; --cache only swaps how the DecodedProgram is
  // obtained, never what the replay loop runs.
  std::unique_ptr<SimEngine> EnginePtr;
  if (Cache) {
    CompileService::Artifact Art = Cache->getOrCompile(
        *F, std::string("bench-sim-v1;") + C.Pipeline,
        [Meld](Function &K, DARMStats &) {
          if (Meld) {
            DARMConfig Cfg;
            runDARM(K, Cfg, nullptr);
          }
          simplifyCFG(K);
          eliminateDeadCode(K);
        });
    DecodedProgram P;
    if (Art->failed() || !decodeFromArtifact(*Art, P))
      reportFatalError("compile cache produced no runnable artifact");
    EnginePtr.reset(new SimEngine(std::move(P), GC));
  } else {
    if (Meld) {
      DARMConfig Cfg;
      runDARM(*F, Cfg, nullptr);
    }
    simplifyCFG(*F);
    eliminateDeadCode(*F);
    EnginePtr.reset(new SimEngine(*F, GC)); // decode once, replay N times
  }
  SimEngine &Engine = *EnginePtr;
  C.Dispatch = Engine.dispatchMode();
  C.TracesFormed = Engine.program().Traces.size();
  for (const DecodedTrace &T : Engine.program().Traces)
    C.TraceBlocks += T.NumBlocks;
  for (unsigned R = 0; R < Repeat; ++R) {
    GlobalMemory Mem;
    std::vector<uint64_t> Base = B->setup(Mem);
    SimStats S;
    auto T0 = std::chrono::steady_clock::now();
    for (unsigned L = 0, E = B->numLaunches(); L != E; ++L) {
      S += Engine.run(B->launch(), B->argsForLaunch(L, Base), Mem);
      const EngineStats &ES = Engine.engineStats();
      C.TraceRuns += ES.TraceRuns;
      C.TraceInstrs += ES.TraceInstrs;
      C.BatchedTraceInstrs += ES.BatchedTraceInstrs;
    }
    auto T1 = std::chrono::steady_clock::now();
    C.Seconds += std::chrono::duration<double>(T1 - T0).count();
    C.Instructions += S.InstructionsIssued;
    C.SimCycles += S.Cycles;
    if (R == 0) {
      std::string Why;
      if (!B->validate(Mem, Base, &Why)) {
        std::fprintf(stderr, "VALIDATION FAILED: %s bs=%u pipeline=%s: %s\n",
                     Name.c_str(), BS, C.Pipeline, Why.c_str());
        reportFatalError("throughput cell produced wrong results");
      }
    }
  }
  return C;
}

/// Pulls the headline number out of a previously recorded JSON (v1 or
/// v2). Deliberately a string scan, not a parser: the file is produced
/// by this binary, and the only field consumed is the one it always
/// writes last.
bool readRecordedThroughput(const char *Path, double &Value) {
  FILE *F = std::fopen(Path, "r");
  if (!F)
    return false;
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  const char *Key = "\"simulated_instructions_per_sec\":";
  const size_t At = Text.find(Key);
  if (At == std::string::npos)
    return false;
  Value = std::atof(Text.c_str() + At + std::strlen(Key));
  return Value > 0;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Repeat = 3;
  // Unlike the sweep drivers, this is a *timing* bench: the tracked
  // instrs/sec number is only commit-comparable single-threaded, so
  // parallel cell execution is opt-in rather than the default.
  unsigned Jobs = 1;
  bool RunBaseline = true, RunDarm = true;
  const char *OutPath = nullptr;
  const char *ComparePath = nullptr;
  SimDispatch Dispatch = SimDispatch::Default;
  bool UseCache = false;
  bool Usage = false;
  for (int I = 1; I < argc && !Usage; ++I) {
    if (!std::strcmp(argv[I], "--repeat") && I + 1 < argc) {
      const int N = std::atoi(argv[++I]);
      if (N <= 0)
        Usage = true;
      else
        Repeat = static_cast<unsigned>(N);
    } else if (!std::strcmp(argv[I], "--jobs") && I + 1 < argc) {
      if (!parseJobs(argv[++I], Jobs))
        Usage = true;
    } else if (!std::strcmp(argv[I], "--pipeline") && I + 1 < argc) {
      ++I;
      if (!std::strcmp(argv[I], "baseline")) {
        RunDarm = false;
      } else if (!std::strcmp(argv[I], "darm")) {
        RunBaseline = false;
      } else if (std::strcmp(argv[I], "both") != 0) {
        Usage = true;
      }
    } else if (!std::strcmp(argv[I], "--dispatch") && I + 1 < argc) {
      ++I;
      if (!std::strcmp(argv[I], "switch")) {
        Dispatch = SimDispatch::Switch;
      } else if (!std::strcmp(argv[I], "threaded")) {
        Dispatch = SimDispatch::Threaded;
      } else if (std::strcmp(argv[I], "default") != 0) {
        Usage = true;
      }
    } else if (!std::strcmp(argv[I], "--cache")) {
      UseCache = true;
    } else if (!std::strcmp(argv[I], "--out") && I + 1 < argc) {
      OutPath = argv[++I];
    } else if (!std::strcmp(argv[I], "--compare") && I + 1 < argc) {
      ComparePath = argv[++I];
    } else {
      Usage = true;
    }
  }
  if (Usage) {
    std::fprintf(stderr,
                 "usage: %s [--repeat N>=1] [--pipeline baseline|darm|both] "
                 "[--dispatch default|switch|threaded] [--jobs N>=1] "
                 "[--cache] [--out FILE] [--compare BASELINE.json]\n",
                 argv[0]);
    return 2;
  }

  struct CellSpec {
    std::string Name;
    unsigned BS;
    bool Meld;
  };
  std::vector<CellSpec> Specs;
  for (const std::string &Name : syntheticBenchmarkNames())
    for (unsigned BS : paperBlockSizes(Name)) {
      if (RunBaseline)
        Specs.push_back({Name, BS, false});
      if (RunDarm)
        Specs.push_back({Name, BS, true});
    }
  // Cells are independent (each builds into its own Context); the pool
  // fans them out and the result order is fixed by the spec list. The
  // compile service is the one component cells share — it is built for
  // cross-thread use (sharded locks, context-free artifacts).
  ThreadPool Pool(Jobs);
  CompileService Cache;
  CompileService *CachePtr = UseCache ? &Cache : nullptr;
  std::vector<Cell> Cells = parallelMap<Cell>(Pool, Specs.size(), [&](size_t I) {
    return runThroughputCell(Specs[I].Name, Specs[I].BS, Specs[I].Meld,
                             Repeat, Dispatch, CachePtr);
  });

  uint64_t TotalInstrs = 0;
  double TotalSec = 0;
  uint64_t TracesFormed = 0, TraceBlocks = 0, TraceRuns = 0;
  uint64_t TraceInstrs = 0, BatchedTraceInstrs = 0;
  for (const Cell &C : Cells) {
    TotalInstrs += C.Instructions;
    TotalSec += C.Seconds;
    TracesFormed += C.TracesFormed;
    TraceBlocks += C.TraceBlocks;
    TraceRuns += C.TraceRuns;
    TraceInstrs += C.TraceInstrs;
    BatchedTraceInstrs += C.BatchedTraceInstrs;
  }
  const double Throughput = TotalSec > 0 ? TotalInstrs / TotalSec : 0;
  const double AvgBlocksPerTrace =
      TracesFormed > 0 ? static_cast<double>(TraceBlocks) / TracesFormed : 0;
  const double TraceInstrFraction =
      TotalInstrs > 0 ? static_cast<double>(TraceInstrs) / TotalInstrs : 0;

  FILE *Out = stdout;
  if (OutPath) {
    Out = std::fopen(OutPath, "w");
    if (!Out)
      reportFatalError("cannot open --out file for writing");
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"darm-sim-throughput-v2\",\n");
  std::fprintf(Out, "  \"suite\": \"fig8_synthetic\",\n");
  std::fprintf(Out, "  \"repeat\": %u,\n", Repeat);
  std::fprintf(Out, "  \"jobs\": %u,\n", Jobs);
  std::fprintf(Out, "  \"compile_cache\": %s,\n", UseCache ? "true" : "false");
  std::fprintf(Out, "  \"dispatch\": \"%s\",\n",
               Cells.empty() ? "" : Cells.front().Dispatch);
  std::fprintf(Out, "  \"cells\": [\n");
  for (size_t I = 0; I < Cells.size(); ++I) {
    const Cell &C = Cells[I];
    std::fprintf(Out,
                 "    {\"benchmark\": \"%s\", \"block_size\": %u, "
                 "\"pipeline\": \"%s\", \"instructions\": %llu, "
                 "\"sim_cycles\": %llu, \"seconds\": %.6f, "
                 "\"instrs_per_sec\": %.1f, "
                 "\"traces_formed\": %llu, \"trace_blocks\": %llu, "
                 "\"trace_runs\": %llu, \"trace_instructions\": %llu, "
                 "\"batched_trace_instructions\": %llu}%s\n",
                 C.Benchmark.c_str(), C.BlockSize, C.Pipeline,
                 static_cast<unsigned long long>(C.Instructions),
                 static_cast<unsigned long long>(C.SimCycles), C.Seconds,
                 C.Seconds > 0 ? C.Instructions / C.Seconds : 0,
                 static_cast<unsigned long long>(C.TracesFormed),
                 static_cast<unsigned long long>(C.TraceBlocks),
                 static_cast<unsigned long long>(C.TraceRuns),
                 static_cast<unsigned long long>(C.TraceInstrs),
                 static_cast<unsigned long long>(C.BatchedTraceInstrs),
                 I + 1 < Cells.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"total_instructions\": %llu,\n",
               static_cast<unsigned long long>(TotalInstrs));
  std::fprintf(Out, "  \"total_seconds\": %.6f,\n", TotalSec);
  std::fprintf(Out, "  \"traces_formed\": %llu,\n",
               static_cast<unsigned long long>(TracesFormed));
  std::fprintf(Out, "  \"avg_blocks_per_trace\": %.3f,\n", AvgBlocksPerTrace);
  std::fprintf(Out, "  \"trace_runs\": %llu,\n",
               static_cast<unsigned long long>(TraceRuns));
  std::fprintf(Out, "  \"trace_instruction_fraction\": %.4f,\n",
               TraceInstrFraction);
  std::fprintf(Out, "  \"batched_trace_instructions\": %llu,\n",
               static_cast<unsigned long long>(BatchedTraceInstrs));
  std::fprintf(Out, "  \"simulated_instructions_per_sec\": %.1f\n",
               Throughput);
  std::fprintf(Out, "}\n");
  if (OutPath)
    std::fclose(Out);

  std::fprintf(stderr,
               "sim_throughput: %.4g simulated instrs/sec "
               "(%llu instrs in %.3fs, repeat=%u, dispatch=%s, "
               "trace coverage %.1f%%)\n",
               Throughput, static_cast<unsigned long long>(TotalInstrs),
               TotalSec, Repeat, Cells.empty() ? "" : Cells.front().Dispatch,
               100.0 * TraceInstrFraction);
  if (UseCache) {
    const CompileService::CacheStats CS = Cache.stats();
    std::fprintf(stderr,
                 "CACHE entries=%llu bytes=%llu hits=%llu misses=%llu "
                 "upgrades=%llu disk_hits=%llu oversized=%llu "
                 "evictions=%llu duplicate_compiles=%llu hit_rate=%.4f\n",
                 static_cast<unsigned long long>(CS.Entries),
                 static_cast<unsigned long long>(CS.Bytes),
                 static_cast<unsigned long long>(CS.Hits),
                 static_cast<unsigned long long>(CS.Misses),
                 static_cast<unsigned long long>(CS.Upgrades),
                 static_cast<unsigned long long>(CS.DiskHits),
                 static_cast<unsigned long long>(CS.Oversized),
                 static_cast<unsigned long long>(CS.Evictions),
                 static_cast<unsigned long long>(CS.DuplicateCompiles),
                 CS.hitRate());
  }

  if (ComparePath) {
    double Recorded = 0;
    if (!readRecordedThroughput(ComparePath, Recorded)) {
      std::fprintf(stderr, "sim_throughput: cannot read recorded throughput "
                           "from %s\n",
                   ComparePath);
      return 2;
    }
    const double Ratio = Throughput / Recorded;
    std::fprintf(stderr,
                 "sim_throughput: %.4g vs recorded %.4g (%.2fx)\n",
                 Throughput, Recorded, Ratio);
    // Gate: fail on a >10% drop. Generous against run-to-run noise on a
    // shared runner, tight enough to catch a real dispatch/SIMD
    // regression (those show up as 2x, not 10%).
    if (Ratio < 0.90) {
      std::fprintf(stderr, "sim_throughput: REGRESSION beyond 10%% "
                           "tolerance\n");
      return 1;
    }
  }
  return 0;
}
