//===- sim_throughput.cpp - Simulator throughput harness --------------------------===//
//
// Measures the simulator's own speed — simulated instructions per wall
// second — over the fig8 synthetic suite (SB1-SB4 and -R variants at the
// paper block sizes, baseline and DARM pipelines). Unlike the figure
// harnesses, the metric here is host throughput, not simulated cycles: it
// bounds how many kernels, configs, and grid sizes every other harness
// can sweep.
//
// Emits machine-readable JSON (stdout or --out FILE) so CI can track the
// number per commit:
//
//   sim_throughput [--repeat N] [--pipeline baseline|darm|both]
//                  [--jobs N] [--out FILE]
//
// Each cell decodes its kernel once (SimEngine) and replays it N times;
// results are host-validated on the first repeat so a fast-but-wrong
// simulator can never report a score. --jobs fans the cells over the
// in-process pool (support/Parallel.h); each cell still times its own
// wall seconds, but contention inflates them, so the default stays 1
// (the tracked trajectory is single-thread) and parallelism is opt-in.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/sim/Simulator.h"
#include "darm/support/ErrorHandling.h"
#include "darm/support/Parallel.h"
#include "darm/support/Shards.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace darm;
using namespace darm::bench;

namespace {

struct Cell {
  std::string Benchmark;
  unsigned BlockSize = 0;
  const char *Pipeline = "";
  uint64_t Instructions = 0;
  uint64_t SimCycles = 0;
  double Seconds = 0;
};

Cell runThroughputCell(const std::string &Name, unsigned BS, bool Meld,
                       unsigned Repeat) {
  auto B = createBenchmark(Name, BS);
  if (!B)
    reportFatalError("unknown benchmark name");

  Context Ctx;
  Module M(Ctx, Name);
  Function *F = B->build(M);
  if (Meld) {
    DARMConfig Cfg;
    runDARM(*F, Cfg, nullptr);
  }
  simplifyCFG(*F);
  eliminateDeadCode(*F);

  Cell C;
  C.Benchmark = Name;
  C.BlockSize = BS;
  C.Pipeline = Meld ? "darm" : "baseline";

  SimEngine Engine(*F); // decode once, replay Repeat times
  for (unsigned R = 0; R < Repeat; ++R) {
    GlobalMemory Mem;
    std::vector<uint64_t> Base = B->setup(Mem);
    SimStats S;
    auto T0 = std::chrono::steady_clock::now();
    for (unsigned L = 0, E = B->numLaunches(); L != E; ++L)
      S += Engine.run(B->launch(), B->argsForLaunch(L, Base), Mem);
    auto T1 = std::chrono::steady_clock::now();
    C.Seconds += std::chrono::duration<double>(T1 - T0).count();
    C.Instructions += S.InstructionsIssued;
    C.SimCycles += S.Cycles;
    if (R == 0) {
      std::string Why;
      if (!B->validate(Mem, Base, &Why)) {
        std::fprintf(stderr, "VALIDATION FAILED: %s bs=%u pipeline=%s: %s\n",
                     Name.c_str(), BS, C.Pipeline, Why.c_str());
        reportFatalError("throughput cell produced wrong results");
      }
    }
  }
  return C;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Repeat = 3;
  // Unlike the sweep drivers, this is a *timing* bench: the tracked
  // instrs/sec number is only commit-comparable single-threaded, so
  // parallel cell execution is opt-in rather than the default.
  unsigned Jobs = 1;
  bool RunBaseline = true, RunDarm = true;
  const char *OutPath = nullptr;
  bool Usage = false;
  for (int I = 1; I < argc && !Usage; ++I) {
    if (!std::strcmp(argv[I], "--repeat") && I + 1 < argc) {
      const int N = std::atoi(argv[++I]);
      if (N <= 0)
        Usage = true;
      else
        Repeat = static_cast<unsigned>(N);
    } else if (!std::strcmp(argv[I], "--jobs") && I + 1 < argc) {
      if (!parseJobs(argv[++I], Jobs))
        Usage = true;
    } else if (!std::strcmp(argv[I], "--pipeline") && I + 1 < argc) {
      ++I;
      if (!std::strcmp(argv[I], "baseline")) {
        RunDarm = false;
      } else if (!std::strcmp(argv[I], "darm")) {
        RunBaseline = false;
      } else if (std::strcmp(argv[I], "both") != 0) {
        Usage = true;
      }
    } else if (!std::strcmp(argv[I], "--out") && I + 1 < argc) {
      OutPath = argv[++I];
    } else {
      Usage = true;
    }
  }
  if (Usage) {
    std::fprintf(stderr,
                 "usage: %s [--repeat N>=1] [--pipeline baseline|darm|both] "
                 "[--jobs N>=1] [--out FILE]\n",
                 argv[0]);
    return 2;
  }

  struct CellSpec {
    std::string Name;
    unsigned BS;
    bool Meld;
  };
  std::vector<CellSpec> Specs;
  for (const std::string &Name : syntheticBenchmarkNames())
    for (unsigned BS : paperBlockSizes(Name)) {
      if (RunBaseline)
        Specs.push_back({Name, BS, false});
      if (RunDarm)
        Specs.push_back({Name, BS, true});
    }
  // Cells are independent (each builds into its own Context); the pool
  // fans them out and the result order is fixed by the spec list.
  ThreadPool Pool(Jobs);
  std::vector<Cell> Cells = parallelMap<Cell>(Pool, Specs.size(), [&](size_t I) {
    return runThroughputCell(Specs[I].Name, Specs[I].BS, Specs[I].Meld,
                             Repeat);
  });

  uint64_t TotalInstrs = 0;
  double TotalSec = 0;
  for (const Cell &C : Cells) {
    TotalInstrs += C.Instructions;
    TotalSec += C.Seconds;
  }
  const double Throughput = TotalSec > 0 ? TotalInstrs / TotalSec : 0;

  FILE *Out = stdout;
  if (OutPath) {
    Out = std::fopen(OutPath, "w");
    if (!Out)
      reportFatalError("cannot open --out file for writing");
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"darm-sim-throughput-v1\",\n");
  std::fprintf(Out, "  \"suite\": \"fig8_synthetic\",\n");
  std::fprintf(Out, "  \"repeat\": %u,\n", Repeat);
  std::fprintf(Out, "  \"jobs\": %u,\n", Jobs);
  std::fprintf(Out, "  \"cells\": [\n");
  for (size_t I = 0; I < Cells.size(); ++I) {
    const Cell &C = Cells[I];
    std::fprintf(Out,
                 "    {\"benchmark\": \"%s\", \"block_size\": %u, "
                 "\"pipeline\": \"%s\", \"instructions\": %llu, "
                 "\"sim_cycles\": %llu, \"seconds\": %.6f, "
                 "\"instrs_per_sec\": %.1f}%s\n",
                 C.Benchmark.c_str(), C.BlockSize, C.Pipeline,
                 static_cast<unsigned long long>(C.Instructions),
                 static_cast<unsigned long long>(C.SimCycles), C.Seconds,
                 C.Seconds > 0 ? C.Instructions / C.Seconds : 0,
                 I + 1 < Cells.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"total_instructions\": %llu,\n",
               static_cast<unsigned long long>(TotalInstrs));
  std::fprintf(Out, "  \"total_seconds\": %.6f,\n", TotalSec);
  std::fprintf(Out, "  \"simulated_instructions_per_sec\": %.1f\n",
               Throughput);
  std::fprintf(Out, "}\n");
  if (OutPath)
    std::fclose(Out);

  std::fprintf(stderr, "sim_throughput: %.4g simulated instrs/sec "
                       "(%llu instrs in %.3fs, repeat=%u)\n",
               Throughput, static_cast<unsigned long long>(TotalInstrs),
               TotalSec, Repeat);
  return 0;
}
