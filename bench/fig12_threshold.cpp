//===- fig12_threshold.cpp - Figure 12: melding profitability threshold ------------===//
//
// Regenerates Fig. 12: DARM speedup on each real-world benchmark (at its
// best block size) as the melding-profitability threshold sweeps
// 0.1..0.5. Higher thresholds forgo profitable melds, so speedup decays;
// below ~0.2 additional melds add little (§VI-E).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/kernels/Benchmark.h"

#include <cstdio>

using namespace darm;
using namespace darm::bench;

int main() {
  std::printf("=== Figure 12: speedup vs. melding profitability threshold "
              "===\n\n");
  const double Thresholds[] = {0.1, 0.2, 0.3, 0.4, 0.5};
  printRow({"benchmark", "block", "0.1", "0.2", "0.3", "0.4", "0.5"});

  for (const std::string &Name : realBenchmarkNames()) {
    unsigned BestBS = 0;
    double BestSpeed = 0;
    for (unsigned BS : paperBlockSizes(Name)) {
      RunResult Base = runCell(Name, BS, Pipeline::Baseline);
      RunResult Darm = runCell(Name, BS, Pipeline::DARM);
      double S = static_cast<double>(Base.Stats.Cycles) /
                 static_cast<double>(Darm.Stats.Cycles);
      if (S > BestSpeed) {
        BestSpeed = S;
        BestBS = BS;
      }
    }
    RunResult Base = runCell(Name, BestBS, Pipeline::Baseline);
    std::vector<std::string> Cells = {Name, sizeLabel(Name, BestBS)};
    for (double T : Thresholds) {
      RunResult R = runCell(Name, BestBS, Pipeline::DARM, T);
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.2fx",
                    static_cast<double>(Base.Stats.Cycles) /
                        static_cast<double>(R.Stats.Cycles));
      Cells.push_back(Buf);
    }
    printRow(Cells);
  }
  std::printf("\nExpected shape: non-increasing in the threshold; little "
              "gained below 0.2 (paper Fig. 12).\n");
  return 0;
}
