//===- table2_compile_time.cpp - Table II: compile time ---------------------------===//
//
// Regenerates Table II: device-code compile time with and without DARM
// for every real-world kernel. The paper reports a 0.3%-5% overhead
// (normalized column). Two modes:
//
//   * google-benchmark timing of the raw O3 / DARM pipelines (the
//     original table; only compiled in when the library is present —
//     DARM_HAVE_GBENCH — so a checkout without libbenchmark-dev still
//     builds this binary),
//
//   * --cache-json FILE: cold-vs-warm compile-cache latency columns
//     (docs/caching.md), no external dependency. Every (kernel,
//     pipeline) pair is compiled through a CompileService twice per
//     repeat — a cold miss on a fresh cache, then a warm hit — and the
//     per-call get-or-compile latencies are written as
//     darm-compile-cache-v1 JSON (per-kernel mean cold/warm µs, p50/p99
//     over all calls, exact hit rate, cache byte/entry counters).
//     --cache-compare OLD.json gates CI: the hit rate must match the
//     recorded artifact exactly (it is deterministic), and the
//     warm/cold p50 ratio may not regress beyond a generous slack
//     (timing noise is real; a broken cache shows up as 100x, not 20%).
//
//   table2_compile_time                          gbench table (if built in)
//   table2_compile_time --cache-json t2.json     cache columns
//   table2_compile_time --cache-json t2.json --cache-compare old.json
//     --repeat N        cold/warm samples per kernel (default 5)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/core/CompileService.h"
#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#ifdef DARM_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace darm;

namespace {

unsigned defaultBlockSize(const std::string &Name) {
  return paperBlockSizes(Name).front();
}

/// The two Table II columns as cacheable compile pipelines. O3 is the
/// non-melding half (simplifycfg + dce); DARM adds the melder with
/// per-step verification off (measure the transform, not the checker).
void compileO3(Function &F, DARMStats &) {
  simplifyCFG(F);
  eliminateDeadCode(F);
}

void compileDARM(Function &F, DARMStats &Stats) {
  DARMConfig Cfg;
  Cfg.VerifyEachStep = false;
  runDARM(F, Cfg, &Stats);
  simplifyCFG(F);
  eliminateDeadCode(F);
}

struct PipelineSpec {
  const char *Name;
  CompileFn Compile;
};

struct CacheRow {
  std::string Benchmark;
  unsigned BlockSize = 0;
  const char *Pipeline = "";
  double ColdUs = 0; ///< mean get-or-compile latency, cold misses
  double WarmUs = 0; ///< mean get-or-compile latency, warm hits
};

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  const size_t Idx = static_cast<size_t>(P * (V.size() - 1) + 0.5);
  return V[std::min(Idx, V.size() - 1)];
}

/// Recorded-artifact scan (same policy as sim_throughput: this binary
/// wrote the file, so a key scan beats a JSON parser).
bool readRecordedField(const std::string &Text, const char *Key,
                       double &Value) {
  const std::string Needle = std::string("\"") + Key + "\":";
  const size_t At = Text.find(Needle);
  if (At == std::string::npos)
    return false;
  Value = std::atof(Text.c_str() + At + Needle.size());
  return true;
}

int runCacheMode(const char *OutPath, const char *ComparePath,
                 unsigned Repeat) {
  const PipelineSpec Pipelines[] = {{"o3", compileO3}, {"darm", compileDARM}};

  std::vector<CacheRow> Rows;
  std::vector<double> ColdSamples, WarmSamples;
  CompileService::CacheStats Total;
  for (unsigned R = 0; R < Repeat; ++R) {
    // A fresh service per repeat: every (kernel, pipeline) pair misses
    // exactly once cold and hits exactly once warm, so the aggregate
    // hit rate is 0.5 by construction — the --cache-compare gate checks
    // it exactly.
    CompileService Service;
    size_t RowIdx = 0;
    for (const std::string &Name : realBenchmarkNames()) {
      const unsigned BS = defaultBlockSize(Name);
      auto B = createBenchmark(Name, BS);
      for (const PipelineSpec &P : Pipelines) {
        const std::string FP = std::string("table2-v1;") + P.Name;
        auto TimeGet = [&]() -> double {
          Context Ctx;
          Module M(Ctx, Name);
          Function *F = B->build(M);
          const auto T0 = std::chrono::steady_clock::now();
          CompileService::Artifact Art =
              Service.getOrCompile(*F, FP, P.Compile);
          const auto T1 = std::chrono::steady_clock::now();
          if (Art->failed()) {
            std::fprintf(stderr, "compile failed: %s %s: %s\n", Name.c_str(),
                         P.Name, Art->CompileError.c_str());
            std::exit(2);
          }
          return std::chrono::duration<double, std::micro>(T1 - T0).count();
        };
        const double Cold = TimeGet();
        const double Warm = TimeGet();
        ColdSamples.push_back(Cold);
        WarmSamples.push_back(Warm);
        if (R == 0)
          Rows.push_back({Name, BS, P.Name, Cold, Warm});
        else {
          Rows[RowIdx].ColdUs += Cold;
          Rows[RowIdx].WarmUs += Warm;
        }
        ++RowIdx;
      }
    }
    const CompileService::CacheStats S = Service.stats();
    Total.Hits += S.Hits;
    Total.Misses += S.Misses;
    Total.Evictions += S.Evictions;
    Total.DuplicateCompiles += S.DuplicateCompiles;
    Total.Bytes += S.Bytes;
    Total.Entries += S.Entries;
  }
  for (CacheRow &Row : Rows) {
    Row.ColdUs /= Repeat;
    Row.WarmUs /= Repeat;
  }

  const double HitRate = Total.hitRate();
  const double ColdP50 = percentile(ColdSamples, 0.50);
  const double ColdP99 = percentile(ColdSamples, 0.99);
  const double WarmP50 = percentile(WarmSamples, 0.50);
  const double WarmP99 = percentile(WarmSamples, 0.99);
  const double WarmOverCold = ColdP50 > 0 ? WarmP50 / ColdP50 : 0;

  FILE *Out = OutPath && std::strcmp(OutPath, "-") != 0
                  ? std::fopen(OutPath, "w")
                  : stdout;
  if (!Out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", OutPath);
    return 2;
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"darm-compile-cache-v1\",\n");
  std::fprintf(Out, "  \"suite\": \"table2_real_kernels\",\n");
  std::fprintf(Out, "  \"repeat\": %u,\n", Repeat);
  std::fprintf(Out, "  \"kernels\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const CacheRow &Row = Rows[I];
    std::fprintf(Out,
                 "    {\"benchmark\": \"%s\", \"block_size\": %u, "
                 "\"pipeline\": \"%s\", \"cold_us\": %.1f, "
                 "\"warm_us\": %.1f}%s\n",
                 Row.Benchmark.c_str(), Row.BlockSize, Row.Pipeline,
                 Row.ColdUs, Row.WarmUs, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"cache_entries\": %llu,\n",
               static_cast<unsigned long long>(Total.Entries));
  std::fprintf(Out, "  \"cache_bytes\": %llu,\n",
               static_cast<unsigned long long>(Total.Bytes));
  std::fprintf(Out, "  \"evictions\": %llu,\n",
               static_cast<unsigned long long>(Total.Evictions));
  std::fprintf(Out, "  \"cold_p50_us\": %.1f,\n", ColdP50);
  std::fprintf(Out, "  \"cold_p99_us\": %.1f,\n", ColdP99);
  std::fprintf(Out, "  \"warm_p50_us\": %.1f,\n", WarmP50);
  std::fprintf(Out, "  \"warm_p99_us\": %.1f,\n", WarmP99);
  std::fprintf(Out, "  \"warm_over_cold_p50\": %.4f,\n", WarmOverCold);
  std::fprintf(Out, "  \"hit_rate\": %.4f\n", HitRate);
  std::fprintf(Out, "}\n");
  if (Out != stdout)
    std::fclose(Out);

  std::fprintf(stderr,
               "table2 cache: cold p50 %.1fus p99 %.1fus, warm p50 %.1fus "
               "p99 %.1fus, warm/cold %.4f, hit rate %.4f\n",
               ColdP50, ColdP99, WarmP50, WarmP99, WarmOverCold, HitRate);

  if (ComparePath) {
    FILE *In = std::fopen(ComparePath, "r");
    if (!In) {
      std::fprintf(stderr, "cannot read recorded artifact '%s'\n",
                   ComparePath);
      return 2;
    }
    std::string Text;
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
      Text.append(Buf, N);
    std::fclose(In);
    double OldHitRate = 0, OldRatio = 0;
    if (!readRecordedField(Text, "hit_rate", OldHitRate) ||
        !readRecordedField(Text, "warm_over_cold_p50", OldRatio)) {
      std::fprintf(stderr, "'%s' is not a darm-compile-cache-v1 artifact\n",
                   ComparePath);
      return 2;
    }
    // The hit rate is deterministic (0.5 by construction) — any drift
    // means get-or-compile stopped hitting and must fail hard.
    if (HitRate < OldHitRate - 1e-9) {
      std::fprintf(stderr,
                   "CACHE REGRESSION: hit rate %.4f below recorded %.4f\n",
                   HitRate, OldHitRate);
      return 1;
    }
    // Latency gate with generous slack: a warm hit turning as slow as a
    // cold compile is a broken cache (ratio -> 1), while scheduler noise
    // moves the ratio by fractions of its small recorded value.
    const double Allowed = std::min(1.0, OldRatio * 3.0 + 0.05);
    if (WarmOverCold > Allowed) {
      std::fprintf(stderr,
                   "CACHE REGRESSION: warm/cold p50 %.4f exceeds allowed "
                   "%.4f (recorded %.4f)\n",
                   WarmOverCold, Allowed, OldRatio);
      return 1;
    }
    std::fprintf(stderr, "cache columns within tolerance of '%s'\n",
                 ComparePath);
  }
  return 0;
}

#ifdef DARM_HAVE_GBENCH

void BM_CompileO3(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    Context Ctx;
    Module M(Ctx, Name);
    auto B = createBenchmark(Name, defaultBlockSize(Name));
    Function *F = B->build(M);
    simplifyCFG(*F);
    eliminateDeadCode(*F);
    benchmark::DoNotOptimize(F);
  }
}

void BM_CompileDARM(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    Context Ctx;
    Module M(Ctx, Name);
    auto B = createBenchmark(Name, defaultBlockSize(Name));
    Function *F = B->build(M);
    DARMConfig Cfg;
    Cfg.VerifyEachStep = false; // measure the transform, not the checker
    runDARM(*F, Cfg);
    simplifyCFG(*F);
    eliminateDeadCode(*F);
    benchmark::DoNotOptimize(F);
  }
}

#endif // DARM_HAVE_GBENCH

} // namespace

int main(int argc, char **argv) {
  const char *CacheJson = nullptr;
  const char *CacheCompare = nullptr;
  unsigned Repeat = 5;
  // Cache-mode flags are consumed here; anything else passes through to
  // google-benchmark (when built in).
  std::vector<char *> Rest{argv[0]};
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--cache-json") && I + 1 < argc) {
      CacheJson = argv[++I];
    } else if (!std::strcmp(argv[I], "--cache-compare") && I + 1 < argc) {
      CacheCompare = argv[++I];
    } else if (!std::strcmp(argv[I], "--repeat") && I + 1 < argc) {
      const int N = std::atoi(argv[++I]);
      if (N <= 0) {
        std::fprintf(stderr, "--repeat expects a positive integer\n");
        return 2;
      }
      Repeat = static_cast<unsigned>(N);
    } else {
      Rest.push_back(argv[I]);
    }
  }

  if (CacheJson)
    return runCacheMode(CacheJson, CacheCompare, Repeat);
  if (CacheCompare) {
    std::fprintf(stderr, "--cache-compare requires --cache-json\n");
    return 2;
  }

#ifdef DARM_HAVE_GBENCH
  std::printf("=== Table II: compile time, O3 vs DARM (see the "
              "<name>/O3 and <name>/DARM pairs; paper overhead: "
              "0.3%%-5%%) ===\n");
  for (const std::string &Name : realBenchmarkNames()) {
    benchmark::RegisterBenchmark((Name + "/O3").c_str(),
                                 [Name](benchmark::State &S) {
                                   BM_CompileO3(S, Name);
                                 });
    benchmark::RegisterBenchmark((Name + "/DARM").c_str(),
                                 [Name](benchmark::State &S) {
                                   BM_CompileDARM(S, Name);
                                 });
  }
  int RestArgc = static_cast<int>(Rest.size());
  benchmark::Initialize(&RestArgc, Rest.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "built without google-benchmark: only the compile-cache "
               "columns are available (--cache-json FILE "
               "[--cache-compare OLD.json] [--repeat N])\n");
  return 2;
#endif
}
