//===- table2_compile_time.cpp - Table II: compile time ---------------------------===//
//
// Regenerates Table II: device-code compile time with and without DARM
// for every real-world kernel, using google-benchmark for stable timing.
// The paper reports a 0.3%-5% overhead (normalized column).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#include <benchmark/benchmark.h>

using namespace darm;

namespace {

unsigned defaultBlockSize(const std::string &Name) {
  return paperBlockSizes(Name).front();
}

void BM_CompileO3(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    Context Ctx;
    Module M(Ctx, Name);
    auto B = createBenchmark(Name, defaultBlockSize(Name));
    Function *F = B->build(M);
    simplifyCFG(*F);
    eliminateDeadCode(*F);
    benchmark::DoNotOptimize(F);
  }
}

void BM_CompileDARM(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    Context Ctx;
    Module M(Ctx, Name);
    auto B = createBenchmark(Name, defaultBlockSize(Name));
    Function *F = B->build(M);
    DARMConfig Cfg;
    Cfg.VerifyEachStep = false; // measure the transform, not the checker
    runDARM(*F, Cfg);
    simplifyCFG(*F);
    eliminateDeadCode(*F);
    benchmark::DoNotOptimize(F);
  }
}

} // namespace

int main(int argc, char **argv) {
  std::printf("=== Table II: compile time, O3 vs DARM (see the "
              "<name>/O3 and <name>/DARM pairs; paper overhead: "
              "0.3%%-5%%) ===\n");
  for (const std::string &Name : realBenchmarkNames()) {
    benchmark::RegisterBenchmark((Name + "/O3").c_str(),
                                 [Name](benchmark::State &S) {
                                   BM_CompileO3(S, Name);
                                 });
    benchmark::RegisterBenchmark((Name + "/DARM").c_str(),
                                 [Name](benchmark::State &S) {
                                   BM_CompileDARM(S, Name);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
