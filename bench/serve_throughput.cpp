//===- serve_throughput.cpp - darmd serving throughput ------------------------===//
//
// Serving-path throughput for the darmd compile daemon (docs/caching.md):
// N concurrent clients drive one shared CompileService through the framed
// serve protocol with duplicate-heavy traffic (every corpus key requested
// many times), in three phases over one on-disk artifact store:
//
//   cold       fresh service, empty store — every key compiles once
//   warm       same service — pure in-memory hit traffic
//   warm_disk  FRESH service over the now-populated store — the daemon
//              restart story: every key must come off disk, zero
//              recompiles (self-gating: nonzero is exit 1, no --compare
//              needed)
//
// Every response is byte-compared against a locally computed
// compileToArtifact of the same (kernel, config) — the daemon's
// byte-identity contract is part of the measurement, not a separate test.
//
// Output: darm-serve-throughput-v1 JSON (per-phase QPS, p50/p99 request
// latency, origin counts, hit rate) for the CI trend artifact.
// --compare OLD.json gates warm QPS against the recorded run with
// generous slack (scheduler noise is real; a broken serving path or
// cache shows up as orders of magnitude, not percent).
//
//   serve_throughput --json serve.json [--compare old.json]
//                    [--clients N] [--requests M] [--store DIR]
//
//===----------------------------------------------------------------------===//

#include "darm/core/CompileService.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/serve/ArtifactStore.h"
#include "darm/serve/Client.h"
#include "darm/serve/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

struct CorpusEntry {
  std::string Label;            ///< "<kernel>/<pipeline>"
  CompileRequest Req;           ///< the wire request
  std::vector<uint8_t> Expect;  ///< serialized in-process artifact
};

/// The duplicate-heavy request corpus: every real benchmark kernel at its
/// smallest paper block size under three config pipelines, with the
/// in-process reference artifact each response must byte-match.
std::vector<CorpusEntry> buildCorpus() {
  struct Pipe {
    const char *Name;
    DARMConfig Cfg;
  };
  std::vector<Pipe> Pipes;
  Pipes.push_back({"darm", DARMConfig()});
  Pipes.push_back({"darm-canon", DARMConfig::withCanonicalization()});
  DARMConfig BF;
  BF.DiamondOnly = true;
  BF.EnableRegionReplication = false;
  Pipes.push_back({"branch-fusion", BF});

  std::vector<CorpusEntry> Corpus;
  for (const std::string &Name : realBenchmarkNames()) {
    auto B = createBenchmark(Name, paperBlockSizes(Name).front());
    Context Ctx;
    Module M(Ctx, Name);
    Function *F = B->build(M);
    const std::string Text = printFunction(*F);
    for (const Pipe &P : Pipes) {
      CorpusEntry E;
      E.Label = Name + "/" + P.Name;
      E.Req.Cfg = P.Cfg;
      E.Req.IRText = Text;
      E.Expect = serializeCompiledModule(compileToArtifact(*F, P.Cfg));
      Corpus.push_back(std::move(E));
    }
  }
  return Corpus;
}

struct PhaseResult {
  double Seconds = 0;
  uint64_t Requests = 0;
  uint64_t Compiled = 0, MemHits = 0, DiskHits = 0, Upgrades = 0;
  uint64_t Mismatches = 0;
  double P50Us = 0, P99Us = 0;
  double qps() const { return Seconds > 0 ? Requests / Seconds : 0; }
  /// Served-without-compiling fraction of the phase's traffic.
  double hitRate() const {
    return Requests ? double(MemHits + DiskHits + Upgrades) / Requests : 0;
  }
};

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  const size_t Idx = static_cast<size_t>(P * (V.size() - 1) + 0.5);
  return V[std::min(Idx, V.size() - 1)];
}

/// One traffic phase: a real SocketServer on \p Endpoint, \p Clients
/// serve::Client sessions against it, each sending \p Requests requests
/// walking the corpus round-robin from a per-client offset (so every key
/// sees duplicate traffic from several clients at once). Latencies are
/// per-request round-trip times through the full client library — what a
/// caller actually experiences, retry machinery included.
PhaseResult runPhase(CompileService &Svc, const std::vector<CorpusEntry> &Corpus,
                     unsigned Clients, unsigned Requests,
                     const std::string &Endpoint) {
  PhaseResult Res;
  std::mutex Mu;
  std::vector<double> Latencies;
  std::atomic<uint64_t> Compiled{0}, MemHits{0}, DiskHits{0}, Upgrades{0},
      Mismatches{0};

  ServeCounters Counters;
  SocketServer::Options SrvOpts;
  SrvOpts.MaxConnections = Clients + 4;
  SocketServer Server(Svc, &Counters, SrvOpts);
  std::string Err;
  const int ListenFd = listenEndpoint(Endpoint, &Err);
  if (ListenFd < 0 || !Server.start(ListenFd)) {
    std::fprintf(stderr, "serve_throughput: %s\n", Err.c_str());
    std::exit(2);
  }

  std::vector<std::thread> Clis;
  const auto T0 = std::chrono::steady_clock::now();
  for (unsigned C = 0; C < Clients; ++C) {
    Clis.emplace_back([&, C] {
      ClientOptions CO;
      CO.Endpoint = Endpoint;
      CO.MaxRetries = 2;
      CO.RequestTimeoutMs = 120000; // cold compiles are slow, not hung
      Client Cli(CO);
      std::vector<double> Mine;
      Mine.reserve(Requests);
      for (unsigned I = 0; I < Requests; ++I) {
        const CorpusEntry &E = Corpus[(C * 7 + I) % Corpus.size()];
        CompileResponse Resp;
        std::string Err;
        const auto R0 = std::chrono::steady_clock::now();
        if (!Cli.request(E.Req, Resp, &Err)) {
          std::fprintf(stderr, "request failed (%s): %s\n", E.Label.c_str(),
                       Err.c_str());
          Mismatches.fetch_add(1);
          break;
        }
        const auto R1 = std::chrono::steady_clock::now();
        Mine.push_back(
            std::chrono::duration<double, std::micro>(R1 - R0).count());
        if (!Resp.Ok || serializeCompiledModule(Resp.Art) != E.Expect) {
          std::fprintf(stderr, "byte mismatch: %s\n", E.Label.c_str());
          Mismatches.fetch_add(1);
          continue;
        }
        switch (Resp.Origin) {
        case ServeOrigin::Compiled:
          Compiled.fetch_add(1);
          break;
        case ServeOrigin::MemoryHit:
          MemHits.fetch_add(1);
          break;
        case ServeOrigin::DiskHit:
          DiskHits.fetch_add(1);
          break;
        case ServeOrigin::Upgraded:
          Upgrades.fetch_add(1);
          break;
        }
      }
      std::lock_guard<std::mutex> Lock(Mu);
      Latencies.insert(Latencies.end(), Mine.begin(), Mine.end());
    });
  }
  for (std::thread &T : Clis)
    T.join();
  Server.drain(/*DeadlineMs=*/5000);
  const auto T1 = std::chrono::steady_clock::now();

  Res.Seconds = std::chrono::duration<double>(T1 - T0).count();
  Res.Requests = Latencies.size();
  Res.Compiled = Compiled.load();
  Res.MemHits = MemHits.load();
  Res.DiskHits = DiskHits.load();
  Res.Upgrades = Upgrades.load();
  Res.Mismatches = Mismatches.load();
  Res.P50Us = percentile(Latencies, 0.50);
  Res.P99Us = percentile(Latencies, 0.99);
  return Res;
}

void printPhase(FILE *Out, const char *Name, const PhaseResult &R,
                const char *Trailing) {
  std::fprintf(Out,
               "  \"%s\": {\"requests\": %llu, \"qps\": %.1f, "
               "\"p50_us\": %.1f, \"p99_us\": %.1f, \"compiled\": %llu, "
               "\"mem_hits\": %llu, \"disk_hits\": %llu, \"upgrades\": %llu, "
               "\"hit_rate\": %.4f}%s\n",
               Name, static_cast<unsigned long long>(R.Requests), R.qps(),
               R.P50Us, R.P99Us, static_cast<unsigned long long>(R.Compiled),
               static_cast<unsigned long long>(R.MemHits),
               static_cast<unsigned long long>(R.DiskHits),
               static_cast<unsigned long long>(R.Upgrades), R.hitRate(),
               Trailing);
}

/// Recorded-artifact scan (same policy as the other bench artifacts:
/// this binary wrote the file, so a key scan beats a JSON parser).
bool readRecordedField(const std::string &Text, const char *Key,
                       double &Value) {
  const std::string Needle = std::string("\"") + Key + "\":";
  size_t At = Text.find(Needle);
  if (At == std::string::npos)
    return false;
  Value = std::atof(Text.c_str() + At + Needle.size());
  return true;
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = nullptr;
  const char *ComparePath = nullptr;
  std::string StoreDir, Endpoint;
  unsigned Clients = 4, Requests = 64;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json") && I + 1 < argc) {
      JsonPath = argv[++I];
    } else if (!std::strcmp(argv[I], "--compare") && I + 1 < argc) {
      ComparePath = argv[++I];
    } else if (!std::strcmp(argv[I], "--store") && I + 1 < argc) {
      StoreDir = argv[++I];
    } else if (!std::strcmp(argv[I], "--endpoint") && I + 1 < argc) {
      Endpoint = argv[++I];
    } else if (!std::strcmp(argv[I], "--clients") && I + 1 < argc) {
      Clients = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--requests") && I + 1 < argc) {
      Requests = static_cast<unsigned>(std::atoi(argv[++I]));
    } else {
      std::fprintf(stderr,
                   "usage: serve_throughput [--json FILE] [--compare OLD] "
                   "[--clients N] [--requests M] [--store DIR] "
                   "[--endpoint E]\n"
                   "  --endpoint: Unix-socket path or host:port (TCP); "
                   "default a temp Unix socket\n");
      return 2;
    }
  }
  if (!Clients || !Requests) {
    std::fprintf(stderr, "--clients/--requests must be positive\n");
    return 2;
  }

  bool TempStore = false;
  if (StoreDir.empty()) {
    char Templ[] = "/tmp/darm-serve-XXXXXX";
    if (!::mkdtemp(Templ)) {
      std::perror("mkdtemp");
      return 2;
    }
    StoreDir = Templ;
    TempStore = true;
  }
  const bool TempEndpoint = Endpoint.empty();
  if (TempEndpoint)
    Endpoint = StoreDir + "/bench.sock";

  const std::vector<CorpusEntry> Corpus = buildCorpus();

  // Phase 1+2: one service over the (empty) store — cold, then pure
  // memory-hit warm traffic.
  PhaseResult Cold, Warm, WarmDisk;
  {
    CompileService Svc;
    FileArtifactStore Store(StoreDir);
    Svc.setPersistence(&Store);
    Cold = runPhase(Svc, Corpus, Clients, Requests, Endpoint);
    Warm = runPhase(Svc, Corpus, Clients, Requests, Endpoint);
  }
  // Phase 3: a fresh service over the now-populated store — the daemon
  // restart. Everything must come off disk; a single recompile fails the
  // run.
  {
    CompileService Svc;
    FileArtifactStore Store(StoreDir);
    Svc.setPersistence(&Store);
    WarmDisk = runPhase(Svc, Corpus, Clients, Requests, Endpoint);
  }
  if (TempEndpoint)
    ::unlink(Endpoint.c_str());

  if (TempStore)
    std::system(("rm -rf " + StoreDir).c_str());

  const uint64_t Mismatches =
      Cold.Mismatches + Warm.Mismatches + WarmDisk.Mismatches;
  const uint64_t WarmRecompiles = WarmDisk.Compiled + WarmDisk.Upgrades;

  FILE *Out = stdout;
  if (JsonPath && std::strcmp(JsonPath, "-") != 0) {
    Out = std::fopen(JsonPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", JsonPath);
      return 2;
    }
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"schema\": \"darm-serve-throughput-v1\",\n");
  std::fprintf(Out, "  \"clients\": %u,\n", Clients);
  std::fprintf(Out, "  \"requests_per_client\": %u,\n", Requests);
  std::fprintf(Out, "  \"corpus_keys\": %zu,\n", Corpus.size());
  printPhase(Out, "cold", Cold, ",");
  printPhase(Out, "warm", Warm, ",");
  printPhase(Out, "warm_disk", WarmDisk, ",");
  std::fprintf(Out, "  \"warm_qps\": %.1f,\n", Warm.qps());
  std::fprintf(Out, "  \"warm_disk_recompiles\": %llu,\n",
               static_cast<unsigned long long>(WarmRecompiles));
  std::fprintf(Out, "  \"byte_mismatches\": %llu\n",
               static_cast<unsigned long long>(Mismatches));
  std::fprintf(Out, "}\n");
  if (Out != stdout)
    std::fclose(Out);

  std::fprintf(stderr,
               "serve: cold %.0f qps (p50 %.0fus), warm %.0f qps "
               "(p50 %.0fus), warm-from-disk %.0f qps (p50 %.0fus), "
               "restart recompiles %llu, mismatches %llu\n",
               Cold.qps(), Cold.P50Us, Warm.qps(), Warm.P50Us, WarmDisk.qps(),
               WarmDisk.P50Us, static_cast<unsigned long long>(WarmRecompiles),
               static_cast<unsigned long long>(Mismatches));

  // Self-gating invariants: deterministic, no recorded artifact needed.
  if (Mismatches) {
    std::fprintf(stderr, "SERVE REGRESSION: %llu responses were not "
                         "byte-identical to in-process compiles\n",
                 static_cast<unsigned long long>(Mismatches));
    return 1;
  }
  if (WarmRecompiles) {
    std::fprintf(stderr, "SERVE REGRESSION: warm-from-disk phase recompiled "
                         "%llu keys (expected 0)\n",
                 static_cast<unsigned long long>(WarmRecompiles));
    return 1;
  }

  if (ComparePath) {
    FILE *In = std::fopen(ComparePath, "r");
    if (!In) {
      std::fprintf(stderr, "cannot read recorded artifact '%s'\n",
                   ComparePath);
      return 2;
    }
    std::string Text;
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
      Text.append(Buf, N);
    std::fclose(In);
    double OldWarmQps = 0;
    if (!readRecordedField(Text, "warm_qps", OldWarmQps)) {
      std::fprintf(stderr, "'%s' is not a darm-serve-throughput-v1 artifact\n",
                   ComparePath);
      return 2;
    }
    // Generous slack: a broken serving path (serialization per request
    // gone quadratic, a lock held across compiles) shows up as orders of
    // magnitude, while CI scheduler noise moves QPS by tens of percent.
    if (Warm.qps() < OldWarmQps / 3.0) {
      std::fprintf(stderr,
                   "SERVE REGRESSION: warm QPS %.1f below a third of "
                   "recorded %.1f\n",
                   Warm.qps(), OldWarmQps);
      return 1;
    }
    std::fprintf(stderr, "serve throughput within tolerance of '%s'\n",
                 ComparePath);
  }
  return 0;
}
