//===- fig11_mem_counters.cpp - Figure 11: memory instruction counters -------------===//
//
// Regenerates Fig. 11: vector (global) memory and LDS (shared) memory
// instruction counts after DARM and after BF, normalized to the O3
// baseline. Melding lets both divergent paths issue one memory
// instruction instead of two, so values below 1.0 indicate successful
// melding of memory operations (§VI-D).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/kernels/Benchmark.h"

#include <cstdio>

using namespace darm;
using namespace darm::bench;

int main() {
  std::printf("=== Figure 11: normalized memory instruction counters ===\n\n");
  printRow({"benchmark", "block", "VMem DARM", "VMem BF", "LDS DARM",
            "LDS BF"});

  for (const std::string &Name : realBenchmarkNames()) {
    unsigned BestBS = 0;
    double BestSpeed = 0;
    for (unsigned BS : paperBlockSizes(Name)) {
      RunResult Base = runCell(Name, BS, Pipeline::Baseline);
      RunResult Darm = runCell(Name, BS, Pipeline::DARM);
      double S = static_cast<double>(Base.Stats.Cycles) /
                 static_cast<double>(Darm.Stats.Cycles);
      if (S > BestSpeed) {
        BestSpeed = S;
        BestBS = BS;
      }
    }
    RunResult Base = runCell(Name, BestBS, Pipeline::Baseline);
    RunResult Darm = runCell(Name, BestBS, Pipeline::DARM);
    RunResult Bf = runCell(Name, BestBS, Pipeline::BranchFusion);

    auto Norm = [](uint64_t X, uint64_t Ref) {
      if (Ref == 0)
        return std::string("n/a");
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.2f",
                    static_cast<double>(X) / static_cast<double>(Ref));
      return std::string(Buf);
    };
    printRow({Name, sizeLabel(Name, BestBS),
              Norm(Darm.Stats.VectorMemInsts, Base.Stats.VectorMemInsts),
              Norm(Bf.Stats.VectorMemInsts, Base.Stats.VectorMemInsts),
              Norm(Darm.Stats.SharedMemInsts, Base.Stats.SharedMemInsts),
              Norm(Bf.Stats.SharedMemInsts, Base.Stats.SharedMemInsts)});
  }
  std::printf("\nExpected shape: large LDS reductions for BIT/PCM; DCT has "
              "no memory ops in its divergent region (paper Fig. 11).\n");
  return 0;
}
