//===- fig8_synthetic.cpp - Figure 8: synthetic benchmark speedups ----------------===//
//
// Regenerates Fig. 8: DARM and Branch Fusion speedups over the -O3
// baseline for SB1-SB4 and their -R variants at block sizes 32..256,
// plus the geometric means (paper: DARM 1.36x, BF 1.10x).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/kernels/Benchmark.h"

#include <cstdio>

using namespace darm;
using namespace darm::bench;

int main() {
  std::printf("=== Figure 8: synthetic benchmark performance "
              "(speedup over baseline) ===\n\n");
  printRow({"benchmark", "block", "base cyc", "DARM cyc", "DARM", "BF"});

  std::vector<double> DarmSpeeds, BfSpeeds;
  for (const std::string &Name : syntheticBenchmarkNames()) {
    for (unsigned BS : paperBlockSizes(Name)) {
      RunResult Base = runCell(Name, BS, Pipeline::Baseline);
      RunResult Darm = runCell(Name, BS, Pipeline::DARM);
      RunResult Bf = runCell(Name, BS, Pipeline::BranchFusion);
      double SD = static_cast<double>(Base.Stats.Cycles) /
                  static_cast<double>(Darm.Stats.Cycles);
      double SB = static_cast<double>(Base.Stats.Cycles) /
                  static_cast<double>(Bf.Stats.Cycles);
      DarmSpeeds.push_back(SD);
      BfSpeeds.push_back(SB);
      char SDs[32], SBs[32];
      std::snprintf(SDs, sizeof(SDs), "%.2fx", SD);
      std::snprintf(SBs, sizeof(SBs), "%.2fx", SB);
      printRow({Name, std::to_string(BS),
                std::to_string(Base.Stats.Cycles),
                std::to_string(Darm.Stats.Cycles), SDs, SBs});
    }
  }
  std::printf("\n");
  std::printf("GM (DARM): %.2fx   [paper: 1.36x]\n", geomean(DarmSpeeds));
  std::printf("GM (BF)  : %.2fx   [paper: 1.10x]\n", geomean(BfSpeeds));
  return 0;
}
