//===- ablation_unpredication.cpp - §IV-E design-choice ablation -------------------===//
//
// Ablates DARM's unpredication step (§IV-E): "unpredication off" fully
// predicates unaligned instructions (stores lowered to
// load+select+store) instead of moving them into guarded blocks. The
// paper argues unpredication avoids redundant execution when the branch
// is biased and avoids the extra loads of predicated stores; this bench
// quantifies that on every benchmark.
//
// A second column ablates region replication (§IV-C case 2) by
// disabling block-region melds.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "darm/core/DARMPass.h"
#include "darm/ir/Context.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/support/ErrorHandling.h"
#include "darm/transform/DCE.h"
#include "darm/transform/SimplifyCFG.h"

#include <cstdio>

using namespace darm;
using namespace darm::bench;

namespace {

uint64_t cyclesWith(const std::string &Name, unsigned BS,
                    const DARMConfig &Cfg) {
  auto B = createBenchmark(Name, BS);
  Context Ctx;
  Module M(Ctx, Name);
  Function *F = B->build(M);
  runDARM(*F, Cfg);
  simplifyCFG(*F);
  eliminateDeadCode(*F);
  SimStats S;
  std::string Why;
  if (!runAndValidate(*B, *F, S, &Why)) {
    std::fprintf(stderr, "ablation produced wrong results: %s\n",
                 Why.c_str());
    reportFatalError("ablation validation failure");
  }
  return S.Cycles;
}

} // namespace

int main() {
  std::printf("=== Ablation: unpredication and region replication "
              "(speedup over baseline) ===\n\n");
  printRow({"benchmark", "block", "DARM", "no-unpred", "no-replic"});

  std::vector<std::string> Names = realBenchmarkNames();
  for (const std::string &S : syntheticBenchmarkNames())
    Names.push_back(S);
  for (const std::string &Name : Names) {
    unsigned BS = paperBlockSizes(Name).front();
    RunResult Base = runCell(Name, BS, Pipeline::Baseline);

    DARMConfig Full;
    DARMConfig NoUnpred;
    NoUnpred.EnableUnpredication = false;
    DARMConfig NoReplic;
    NoReplic.EnableRegionReplication = false;

    auto Speed = [&](const DARMConfig &Cfg) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.2fx",
                    static_cast<double>(Base.Stats.Cycles) /
                        static_cast<double>(cyclesWith(Name, BS, Cfg)));
      return std::string(Buf);
    };
    printRow({Name, sizeLabel(Name, BS), Speed(Full), Speed(NoUnpred),
              Speed(NoReplic)});
  }
  std::printf(
      "\nMeasured shape (see EXPERIMENTS.md): at our simulator's scale "
      "full predication\nis never worse than unpredication (biased-path "
      "redundancy is cheap here),\nand on SB4 disabling replication makes "
      "DARM fall back to iterative diamond\nmelding, which our cleanup "
      "pipeline optimizes better than replicated regions.\n");
  return 0;
}
