//===- CorpusRunner.h - Claims measurement over the kernel corpus --*- C++ -*-===//
///
/// \file
/// Drives the claims oracle (Claims.h) over the whole kernel corpus: every
/// src/kernels benchmark at its smallest and largest paper block size,
/// plus seeded fuzz kernels. Each kernel is measured unmelded (the
/// reference) and under the darm / darm-aggressive / branch-fusion
/// configurations; tools/darm_check reports plausibility violations and
/// golden diffs (GoldenStore.h), and `--shards N:i` (support/Shards.h)
/// partitions the work deterministically across processes for the
/// nightly budget.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CHECK_CORPUSRUNNER_H
#define DARM_CHECK_CORPUSRUNNER_H

#include "darm/check/Claims.h"
#include "darm/support/Parallel.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace darm {

class CompileService;
class Function;

namespace fuzz {
struct FuzzCase;
}

namespace check {

/// One (benchmark, block size) corpus cell.
struct BenchCell {
  std::string Name;
  unsigned BlockSize = 0;
};

/// Every benchmark (real + synthetic) at its smallest and largest paper
/// block size — the same cells the sim goldens pin.
std::vector<BenchCell> benchmarkCorpus();

/// One measured transform configuration. The callback mutates a freshly
/// built kernel; "unmelded" is implicit as Configs[0] of every
/// measurement.
struct ClaimConfig {
  std::string Name;
  std::function<void(Function &)> Transform;
};

/// The configurations the claims corpus measures: full DARM at the
/// paper's threshold, DARM at an aggressive threshold, and the
/// DiamondOnly Branch Fusion baseline.
std::vector<ClaimConfig> claimConfigs();

/// The per-pass attribution configurations (docs/passes.md): plain darm,
/// darm with exactly one canonicalization pass enabled (darm-constprop,
/// darm-algebraic, darm-gvn, darm-licm, darm-unroll), and darm-canon with
/// all five. Measured by `darm_check --attribution` and the fuzz-canon
/// golden; kept out of claimConfigs() so existing goldens are untouched.
std::vector<ClaimConfig> attributionConfigs();

/// Measures one benchmark cell under every configuration: build, apply
/// the transform, simplify-cfg + DCE (the same pipeline the sim goldens
/// run), simulate every launch, host-validate, fingerprint memory.
/// \p Configs defaults to claimConfigs(); tests inject sabotaged
/// transforms to prove the golden gate catches regressions.
KernelClaims measureBenchmark(const BenchCell &Cell);
KernelClaims measureBenchmark(const BenchCell &Cell,
                              const std::vector<ClaimConfig> &Configs);

/// Measures one generated fuzz kernel under every configuration over its
/// deterministic memory image (simulator aborts surface as Valid=false,
/// never process exit). \p Configs defaults to claimConfigs();
/// attributionConfigs() is the other in-tree caller.
KernelClaims measureFuzz(const fuzz::FuzzCase &C);
KernelClaims measureFuzz(const fuzz::FuzzCase &C,
                         const std::vector<ClaimConfig> &Configs);

/// Parallel corpus measurement (tools/darm_check, docs/performance.md):
/// fans every (cell-or-seed, config) pair out over \p Pool's workers —
/// each pair builds its kernel into its own Context — while a cell's
/// Benchmark object and host-input recipe are created once and shared
/// read-only across its config jobs, never once per config. Results come
/// back in corpus order (\p Cells then \p Seeds), each kernel's configs
/// in the sequential order, so aggregates, goldens and JSON artifacts
/// are byte-identical at any --jobs value. \p OnKernel (optional) is
/// invoked from the calling thread, in corpus order, as each kernel's
/// measurement completes.
///
/// With a non-null \p Cache (core/CompileService.h, docs/caching.md)
/// every (kernel, config) pair compiles through the get-or-compile
/// cache, keyed by the built kernel's canonical-IR hash and the config
/// name, and the measurement evaluates the *deserialized artifact* on
/// hit and miss alike — so a cold pass, a warm pass, and an uncached
/// pass all produce byte-identical claims. Benchmark cells reuse the
/// artifact's DecodedProgram image; fuzz cells re-simulate the
/// deserialized module (decode stays inside the fuzz fatal guard).
std::vector<KernelClaims>
measureCorpus(ThreadPool &Pool, const std::vector<BenchCell> &Cells,
              const std::vector<uint64_t> &Seeds,
              const std::function<void(const KernelClaims &)> &OnKernel = {},
              CompileService *Cache = nullptr);
/// Same, measuring under an explicit config set (e.g. attributionConfigs()
/// for `darm_check --attribution`) instead of claimConfigs().
std::vector<KernelClaims>
measureCorpus(ThreadPool &Pool, const std::vector<BenchCell> &Cells,
              const std::vector<uint64_t> &Seeds,
              const std::vector<ClaimConfig> &Cfgs,
              const std::function<void(const KernelClaims &)> &OnKernel = {},
              CompileService *Cache = nullptr);

/// Sums per-config stats across measurements (configs matched by name):
/// the population-level view of a fuzz sweep. Per-seed plausibility can
/// only be a loose pathology alarm (ClaimsOptions::forGeneratedKernels),
/// but over a whole seed population melding must move every claimed
/// metric in the paper's direction, so the aggregate is checked at
/// strict tolerances. MemHash is zeroed (meaningless across kernels) and
/// Valid is the conjunction.
KernelClaims aggregateClaims(const std::vector<KernelClaims> &Ks,
                             const std::string &Name);

} // namespace check
} // namespace darm

#endif // DARM_CHECK_CORPUSRUNNER_H
