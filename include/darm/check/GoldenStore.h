//===- GoldenStore.h - darm-claims-v1 golden metrics store ---------*- C++ -*-===//
///
/// \file
/// Serialization and diffing of claims measurements (docs/claims.md).
/// Goldens live in tests/goldens/claims/*.json, one file per benchmark
/// (schema `darm-claims-v1`): every (kernel, block size, config) cell
/// records all SimStats counters plus the memory-image fingerprint. A
/// pass change that silently degrades a paper metric — more divergent
/// branches, fewer active ALU lanes — shows up as an exact per-counter
/// diff against the recorded golden, failing CTest.
///
/// Regeneration (only for *intentional* metric changes):
///   DARM_REGEN_GOLDENS=1 ctest -R Claims   # or darm_check --goldens DIR
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CHECK_GOLDENSTORE_H
#define DARM_CHECK_GOLDENSTORE_H

#include "darm/check/Claims.h"

#include <string>
#include <vector>

namespace darm {
namespace check {

/// Schema tag written to and required from every golden file.
inline constexpr const char *kClaimsSchema = "darm-claims-v1";

/// One golden file: a set of measured kernels (typically every block
/// size of one benchmark, or a pinned set of fuzz seeds).
struct GoldenFile {
  std::vector<KernelClaims> Kernels;
};

/// Serializes \p G as pretty-printed darm-claims-v1 JSON (stable field
/// order, one config per line block, trailing newline).
std::string toJson(const GoldenFile &G);

/// Parses darm-claims-v1 JSON previously written by toJson (a strict
/// subset of JSON: objects, arrays, strings, integers, bools). Returns
/// false and fills \p Err on malformed input or a schema mismatch.
bool fromJson(const std::string &Text, GoldenFile &Out,
              std::string *Err = nullptr);

/// Exact comparison of measured kernels against a recorded golden.
/// Returns one human-readable line per difference:
///   "BIT/bs32 darm: divergent_branches golden=120 got=200 (+80)"
/// Missing/extra kernels and configs are reported too. Empty = match.
std::vector<std::string> diffClaims(const GoldenFile &Golden,
                                    const std::vector<KernelClaims> &Measured);

/// Reads/writes a golden file on disk. load returns false on I/O or
/// parse failure (\p Err); save returns false on I/O failure.
bool loadGoldenFile(const std::string &Path, GoldenFile &Out,
                    std::string *Err = nullptr);
bool saveGoldenFile(const std::string &Path, const GoldenFile &G,
                    std::string *Err = nullptr);

} // namespace check
} // namespace darm

#endif // DARM_CHECK_GOLDENSTORE_H
