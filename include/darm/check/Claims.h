//===- Claims.h - SimStats plausibility invariants -----------------*- C++ -*-===//
///
/// \file
/// Counter-level conformance with the paper's performance claims
/// (docs/claims.md). Correctness testing (tests/, the differential fuzz
/// oracle) proves a melded kernel computes the right answers; the checks
/// here assert it also moves the §VI-B/C/D metrics in the claimed
/// direction: melding must not *increase* dynamic divergent branches,
/// must not reduce ALU lane utilization beyond a tolerance, must not grow
/// the memory-instruction count, and must leave the final memory image
/// bit-identical.
///
/// The invariants compare one transformed configuration against the
/// unmelded reference of the same kernel; they are deliberately one-sided
/// (regressions fail, improvements always pass), so they hold across
/// arbitrary corpora — every src/kernels benchmark and every generated
/// fuzz kernel — not just the tuned paper workloads.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CHECK_CLAIMS_H
#define DARM_CHECK_CLAIMS_H

#include "darm/sim/GpuConfig.h"

#include <string>
#include <vector>

namespace darm {
namespace check {

/// Tolerances for the plausibility invariants. Defaults are the nightly
/// gate; tests tighten or loosen them per scenario.
struct ClaimsOptions {
  /// Skip the counter invariants entirely. Set by optionsForConfig for
  /// the deliberately unprofitable correctness-coverage configurations
  /// (darm-aggressive, darm-nounpred): the paper claims nothing at
  /// threshold 0.05 or with unpredication disabled, and both legitimately
  /// add guard branches past any principled bound. darm-aggressive's
  /// exact counters are still pinned by the goldens; darm-nounpred is
  /// exercised by the fuzz oracle's memory-diff axis only.
  bool Skip = false;
  /// Allowed absolute drop in aluUtilization() vs the reference. Melding
  /// occasionally restructures a kernel so a *different* mix of VALU ops
  /// issues (e.g. select-lowering); a small epsilon keeps the gate on
  /// real regressions.
  double AluUtilDropTol = 0.02;
  /// Extra dynamic divergent branches tolerated vs the reference. The
  /// melder inserts real guard branches for side-dependent gap stores
  /// (docs/fuzzing.md bug #1), so a transformed kernel may legitimately
  /// execute a handful more; the default absorbs none.
  uint64_t DivergentBranchSlack = 0;
  /// Additional *relative* divergent-branch growth allowed, as a fraction
  /// of the reference count. Zero for the paper-claim configs; nonzero
  /// only for deliberately unprofitable configurations (darm-aggressive
  /// melds below the profitability threshold, so unpredication's guard
  /// branches may exceed what melding removed — the config exists for
  /// correctness coverage, and the paper claims nothing at threshold
  /// 0.05). A cap still catches pathological blowups.
  double DivergentBranchRelTol = 0.0;
  /// Allowed fractional growth of VectorMemInsts + SharedMemInsts.
  double MemInstIncreaseTol = 0.0;
  /// Absolute extra memory instructions tolerated on top of the
  /// fractional allowance.
  uint64_t MemInstSlack = 0;
  /// Require the final memory image fingerprint to match the reference.
  bool RequireMemoryIdentity = true;

  /// The profile for *generated* (fuzz) kernels, where the strict
  /// defaults are unsound on single adversarial shapes:
  ///
  ///   * a statically-divergent but dynamically one-sided branch lets
  ///     full predication speculate the untaken side's memory ops (more
  ///     issues, all masked);
  ///   * side-dependent gap stores get real guard branches
  ///     (docs/fuzzing.md bug #1), so a melded tiny diamond can execute
  ///     more divergent branches than the one it replaced;
  ///   * utilization is a ratio: melding often deletes high-utilization
  ///     full-mask work (a branch-condition chain made dead by removing
  ///     the branch), lowering the *average* while strictly improving
  ///     the kernel — so the per-seed axis does not gate on it at all.
  ///
  /// Those are correct, profitable transforms — not claim regressions.
  /// This profile keeps the per-seed axis as a pathology alarm (bounded
  /// relative growth) while darm_check's *aggregate* gate over the whole
  /// seed population enforces the strict direction the paper claims,
  /// utilization included.
  static ClaimsOptions forGeneratedKernels() {
    ClaimsOptions O;
    O.AluUtilDropTol = 1.0; // ratio cannot drop by more: check disabled
    O.DivergentBranchSlack = 4;
    O.DivergentBranchRelTol = 1.0;
    O.MemInstSlack = 4;
    O.MemInstIncreaseTol = 1.0;
    return O;
  }

  /// The gate for a *population* of generated kernels (darm_check's
  /// fuzz aggregate): divergent branches and utilization must move in
  /// the paper's direction at the strict defaults, while the
  /// memory-instruction count gets a small relative allowance. Full
  /// predication speculates predicated memory ops on dynamically
  /// one-sided branches — a real cost melding pays that the random
  /// corpus (unlike the paper's genuinely divergent benchmarks, which
  /// stay strict) does not amortize. Measured overhead on seeds
  /// [0, 2000) is +0.9%; the 3% bound flags anything systematically
  /// worse.
  static ClaimsOptions forGeneratedAggregate() {
    ClaimsOptions O;
    O.MemInstIncreaseTol = 0.03;
    return O;
  }
};

/// One configuration's measurement of one kernel.
struct ConfigMetrics {
  std::string Config; ///< "unmelded", "darm", "darm-aggressive", ...
  SimStats Stats;
  uint64_t MemHash = 0;
  bool Valid = true; ///< host-reference validation (benchmarks only)
};

/// All configurations of one kernel. Configs[0] is the unmelded
/// reference every invariant compares against.
struct KernelClaims {
  std::string Kernel;     ///< "BIT", "SB2R", "fuzz17", ...
  unsigned BlockSize = 0; ///< 0 when not applicable (fuzz kernels)
  std::vector<ConfigMetrics> Configs;

  /// "BIT/bs32", or just the kernel name when BlockSize is 0.
  std::string cellName() const;
};

/// One violated invariant, attributed to a counter for diffable output.
struct Violation {
  std::string Kernel;  ///< KernelClaims::cellName()
  std::string Config;  ///< offending configuration
  std::string Counter; ///< "divergent_branches", "alu_util", ...
  std::string Detail;  ///< "ref=16 got=20 (+4)"

  std::string str() const; ///< "kernel config: counter detail"
};

/// Checks one transformed configuration against the reference. Returns
/// true when plausible; otherwise fills \p Counter / \p Detail with the
/// first violated invariant.
bool statsPlausible(const SimStats &Ref, const SimStats &Got,
                    const ClaimsOptions &O, std::string *Counter = nullptr,
                    std::string *Detail = nullptr);

/// Central tolerance policy: returns \p Base adjusted for \p Config. The
/// paper-claim configs ("darm", "branch-fusion") keep \p Base; the
/// deliberately unprofitable correctness-coverage configs
/// ("darm-aggressive", "darm-nounpred") skip the counter invariants
/// (ClaimsOptions::Skip) — their counters stay golden-pinned. Every
/// claims consumer — checkClaims, the fuzz oracle's claims axis —
/// resolves tolerances through here so the policy lives in one place.
ClaimsOptions optionsForConfig(const std::string &Config,
                               const ClaimsOptions &Base);

/// Runs every invariant over every non-reference configuration of \p K,
/// including memory-image identity and host validation.
std::vector<Violation> checkClaims(const KernelClaims &K,
                                   const ClaimsOptions &O = ClaimsOptions());

} // namespace check
} // namespace darm

#endif // DARM_CHECK_CLAIMS_H
