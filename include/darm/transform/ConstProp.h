//===- ConstProp.h - Sparse conditional constant propagation ------*- C++ -*-===//
///
/// \file
/// Classic SCCP (Wegman-Zadeck): an optimistic three-level lattice
/// (unknown / constant / overdefined) solved sparsely over the SSA graph
/// together with CFG edge feasibility, so constants are propagated through
/// phis *and* branches on constants prune the paths they rule out. After
/// the solve, constant-valued pure instructions are replaced, conditional
/// branches on constants are rewritten to unconditional branches, and
/// unreachable blocks are deleted.
///
/// Folding delegates to ConstantFolding.h, so SCCP agrees bit-for-bit with
/// the simulator and with the algebraic simplifier. `undef` operands are
/// treated as overdefined (no optimistic undef reasoning) — the fuzz
/// oracle compares memory images bitwise and the simulator materializes
/// undef as zero, so guessing would be unsound.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_CONSTPROP_H
#define DARM_TRANSFORM_CONSTPROP_H

namespace darm {

class Function;

/// Runs SCCP over \p F. Returns true if the IR changed.
bool propagateConstants(Function &F);

} // namespace darm

#endif // DARM_TRANSFORM_CONSTPROP_H
