//===- DCE.h - Dead code elimination -------------------------------*- C++ -*-===//
///
/// \file
/// Trivial dead-code elimination: unused instructions without side effects
/// are deleted, cascading through their operands.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_DCE_H
#define DARM_TRANSFORM_DCE_H

namespace darm {

class Function;

/// Deletes dead instructions; returns true on change.
bool eliminateDeadCode(Function &F);

} // namespace darm

#endif // DARM_TRANSFORM_DCE_H
