//===- LICM.h - Loop-invariant code motion -------------------------*- C++ -*-===//
///
/// \file
/// Hoists speculation-safe instructions whose operands are defined outside
/// the loop into the loop preheader. Because every instruction in this IR
/// is total (Instruction.h), safe-to-speculate instructions can be hoisted
/// unconditionally — even out of conditionally-executed blocks and even if
/// the loop body never runs. Loads, stores and convergent operations are
/// never moved.
///
/// Loops without a preheader (LoopInfo::Loop::getPreheader) are skipped.
/// The pass never changes the CFG.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_LICM_H
#define DARM_TRANSFORM_LICM_H

namespace darm {

class Function;

/// Hoists invariant instructions out of every loop, to a fixed point (so
/// invariants escape nested loops one level per round). Returns true if
/// anything moved.
bool hoistLoopInvariants(Function &F);

} // namespace darm

#endif // DARM_TRANSFORM_LICM_H
