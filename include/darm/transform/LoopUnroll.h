//===- LoopUnroll.h - Divergent-loop unrolling ---------------------*- C++ -*-===//
///
/// \file
/// The headline canonicalization for DARM (docs/passes.md): full unrolling
/// of bounded loops whose *trip count varies per lane*. A divergent loop
/// serializes the warp once per iteration spread — lanes that finished
/// idle while the longest-running lane loops — and darm-meld cannot touch
/// it, because the divergence lives in the backedge, not in a branch pair.
/// Unrolling converts that loop-trip divergence into a ladder of forward
/// guard branches over straight-line bodies:
///
///     for (i = 0; i < n_lane; ++i) body(i)
///   ==>
///     if (0 < n_lane) { body(0); if (1 < n_lane) { body(1); ... } }
///
/// which is exactly the branch-divergent shape the melder and its
/// unpredication stage consume (and constprop/algebraic then fold each
/// ladder guard's induction arithmetic to a constant-vs-bound compare).
///
/// A loop unrolls only when all of the following hold:
///   - innermost, single latch, and its only exit edge is
///     `header: condbr (icmp {slt|sle|ult|ule} iv, bound), body, exit`
///     with the exit block having no other predecessors;
///   - `iv` is a header phi: constant non-negative init from the
///     preheader, constant positive step via an `add` from the latch;
///   - `bound` is loop-invariant and a small static upper bound for it is
///     provable from its expression (constants, `and` with a constant
///     mask, `urem`/`add`/`select`/`zext` thereof) — this covers the
///     `add (and tid, K), 1` per-lane trip counts the fuzz generator
///     emits;
///   - the header branch is divergent (DivergenceAnalysis) — uniform
///     loops don't serialize the warp, so unrolling them only costs code
///     size;
///   - the unroll is within budget (trip bound and total cloned
///     instructions).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_LOOPUNROLL_H
#define DARM_TRANSFORM_LOOPUNROLL_H

namespace darm {

class Function;

/// Fully unrolls every divergent bounded loop that satisfies the contract
/// above, innermost first, to a fixed point. Returns true if the IR
/// changed.
bool unrollDivergentLoops(Function &F);

} // namespace darm

#endif // DARM_TRANSFORM_LOOPUNROLL_H
