//===- SSAUpdater.h - SSA repair after CFG restructuring -----------*- C++ -*-===//
///
/// \file
/// Re-establishes the SSA dominance invariant for a definition whose uses
/// were left un-dominated by a CFG transformation (melding, unpredication,
/// region replication). This generalizes the paper's ad-hoc φ insertion at
/// dominance frontiers (Fig. 5 and §IV-E): φ nodes are placed on the
/// iterated dominance frontier of the defining block, with `undef` flowing
/// in from paths that never execute the definition — exactly the
/// "%m = phi [undef, %A], [%a, %B]" pattern of the paper.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_SSAUPDATER_H
#define DARM_TRANSFORM_SSAUPDATER_H

namespace darm {

class Function;
class Instruction;
class DominatorTree;
class DominanceFrontier;

/// Rewrites every use of \p Def that \p Def no longer dominates, inserting
/// φ nodes on the iterated dominance frontier of the defining block.
/// Returns true if any rewriting happened. \p DT and \p DF must be current.
bool repairSSA(Instruction *Def, const DominatorTree &DT,
               const DominanceFrontier &DF);

/// Repairs all dominance violations in \p F (recomputes analyses once,
/// then fixes every offending definition). Returns true on change.
bool repairFunctionSSA(Function &F);

} // namespace darm

#endif // DARM_TRANSFORM_SSAUPDATER_H
