//===- SimplifyCFG.h - CFG cleanup pass ---------------------------*- C++ -*-===//
///
/// \file
/// CFG canonicalization mirroring LLVM's -simplifycfg as used by the paper
/// after each melding round (§IV, Algorithm 1): unreachable-block removal,
/// constant/identical-successor branch folding, trivial-phi elimination,
/// linear block merging, and empty-block forwarding.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_SIMPLIFYCFG_H
#define DARM_TRANSFORM_SIMPLIFYCFG_H

namespace darm {

class Function;

/// Runs all simplifications to a fixed point. Returns true on change.
bool simplifyCFG(Function &F);

/// Individual steps (exposed for unit testing). Each returns true on
/// change.
bool foldConstantBranches(Function &F);
bool foldIdenticalSuccessorBranches(Function &F);
bool removeTrivialPhis(Function &F);
bool mergeLinearBlocks(Function &F);
bool forwardEmptyBlocks(Function &F);

/// If-conversion of triangles (LLVM's SpeculativelyExecuteBB): a side
/// block containing only cheap, speculation-safe instructions is hoisted
/// into its predecessor and the join phis become selects. This is the
/// cleanup the paper's pipeline gets from -simplifycfg (§IV-G notes HIPCC
/// "applied if-conversion aggressively").
bool speculateTriangles(Function &F);

/// Local instruction folds: select with identical/undef/constant-condition
/// arms, boolean select lowering to logic, and i1 and/or/xor identities.
bool simplifyInstructions(Function &F);

/// Removes blocks containing only phis and an unconditional branch by
/// pushing their phis into the successor's phis (LLVM's
/// TryToSimplifyUncondBranchFromEmptyBlock). Cleans up merge blocks left
/// behind by region simplification when no meld was committed.
bool removePhiOnlyForwarders(Function &F);

} // namespace darm

#endif // DARM_TRANSFORM_SIMPLIFYCFG_H
