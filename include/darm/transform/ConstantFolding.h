//===- ConstantFolding.h - Fold operations over constant operands --*- C++ -*-===//
///
/// \file
/// Compile-time evaluation of pure operations whose operands are all
/// constants. The folder mirrors the simulator's *total* semantics
/// bit-for-bit (src/sim/Simulator.cpp): division and remainder by zero
/// yield 0, sdiv INT_MIN/-1 negates, fptosi maps NaN to 0 and saturates
/// out-of-range values, and every integer result is renormalized to the
/// canonical register form (i1 as 0/1, i32 sign-extended). Shared by the
/// algebraic simplifier and sparse conditional constant propagation so
/// both agree with each other and with execution.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_CONSTANTFOLDING_H
#define DARM_TRANSFORM_CONSTANTFOLDING_H

#include <vector>

namespace darm {

class Context;
class Instruction;
class Value;

/// Folds one pure operation over explicit operand values \p Ops (which
/// substitute for the instruction's operands position-for-position, as in
/// SCCP where operands are lattice constants rather than the IR operands).
/// Returns the folded constant, or nullptr when the operation is not
/// foldable (unsupported opcode, or an operand that is not a ConstantInt /
/// ConstantFloat). Handles binary ops, icmp/fcmp, casts and select.
Value *foldOperation(Context &Ctx, const Instruction &I,
                     const std::vector<Value *> &Ops);

/// Convenience wrapper: folds \p I over its own operands.
Value *foldInstruction(Instruction &I);

} // namespace darm

#endif // DARM_TRANSFORM_CONSTANTFOLDING_H
