//===- PassManager.h - Function pass pipeline ---------------------*- C++ -*-===//
///
/// \file
/// A minimal function-pass pipeline with per-pass timing and optional
/// post-pass verification, used by the darm_opt tool and the compile-time
/// benchmark (Table II).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_PASSMANAGER_H
#define DARM_TRANSFORM_PASSMANAGER_H

#include <functional>
#include <string>
#include <vector>

namespace darm {

class Function;

/// One named pass over a function; returns true if the IR changed.
using FunctionPass = std::function<bool(Function &)>;

/// Runs passes in order, recording wall-clock time per pass.
class PassManager {
public:
  /// If \p VerifyEach, verifyFunction runs after every pass and a failure
  /// aborts (compiler bug).
  explicit PassManager(bool VerifyEach = true) : VerifyEach(VerifyEach) {}

  void addPass(const std::string &Name, FunctionPass P) {
    Passes.push_back({Name, std::move(P)});
  }

  /// Runs the pipeline; returns true if any pass changed the IR.
  bool run(Function &F);

  /// Seconds spent in each pass during the last run().
  const std::vector<std::pair<std::string, double>> &timings() const {
    return Timings;
  }
  /// Total seconds of the last run().
  double totalSeconds() const;

  /// Seconds per pass summed over every run() since construction (or the
  /// last resetTimings()). Fixed-point drivers call run() repeatedly; this
  /// is the per-stage cost of the whole fixed-point, in pipeline order.
  const std::vector<std::pair<std::string, double>> &cumulativeTimings() const {
    return Cumulative;
  }
  void resetTimings() {
    Timings.clear();
    Cumulative.clear();
  }

private:
  bool VerifyEach;
  std::vector<std::pair<std::string, FunctionPass>> Passes;
  std::vector<std::pair<std::string, double>> Timings;
  std::vector<std::pair<std::string, double>> Cumulative;
};

} // namespace darm

#endif // DARM_TRANSFORM_PASSMANAGER_H
