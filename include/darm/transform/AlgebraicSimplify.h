//===- AlgebraicSimplify.h - Algebraic identities and strength reduction --*- C++ -*-===//
///
/// \file
/// Peephole canonicalization: constant folding (via the shared folder in
/// ConstantFolding.h), integer algebraic identities (x+0, x*1, x^x,
/// icmp x,x, ...), and strength reduction of multiply/divide/remainder by
/// powers of two into shifts and masks. Float expressions are folded only
/// when *all* operands are constant — no float identities are applied,
/// because x+0.0, x*1.0 etc. are not bit-identities under IEEE semantics
/// (-0.0, NaN), and the fuzz oracle compares memory images bitwise.
///
/// Purely local: never touches the CFG, phis or memory operations, so all
/// analyses stay valid across a run. Part of the canonicalization pipeline
/// that runs before darm-meld (docs/passes.md): folding syntactic
/// differences between divergent arms raises the melder's alignment score.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_ALGEBRAICSIMPLIFY_H
#define DARM_TRANSFORM_ALGEBRAICSIMPLIFY_H

namespace darm {

class Function;

/// Runs folding + identities + strength reduction to a fixed point.
/// Returns true if the IR changed.
bool simplifyAlgebraic(Function &F);

} // namespace darm

#endif // DARM_TRANSFORM_ALGEBRAICSIMPLIFY_H
