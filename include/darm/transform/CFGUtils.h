//===- CFGUtils.h - CFG surgery helpers ---------------------------*- C++ -*-===//
///
/// \file
/// Edge- and block-level CFG surgery used by SimplifyCFG, region
/// simplification and the melder. All helpers keep predecessor lists and
/// phi nodes consistent.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_CFGUTILS_H
#define DARM_TRANSFORM_CFGUTILS_H

#include <set>
#include <vector>

namespace darm {

class BasicBlock;
class Function;

/// Splits the edge From->To by inserting a fresh block containing a single
/// unconditional branch. Phi entries in \p To are retargeted to the new
/// block. If the edge is duplicated (condbr with both arms equal), only
/// the occurrence \p SuccIdx is split. Returns the new block.
BasicBlock *splitEdge(BasicBlock *From, BasicBlock *To, unsigned SuccIdx);

/// Splits every edge From->To (all successor slots that target \p To).
/// Returns one new block per split edge.
std::vector<BasicBlock *> splitAllEdges(BasicBlock *From, BasicBlock *To);

/// Removes every edge From->To: phi entries in \p To for \p From are
/// dropped. The caller must subsequently fix From's terminator.
void removeEdgePhis(BasicBlock *From, BasicBlock *To);

/// Blocks reachable from the entry block.
std::set<BasicBlock *> computeReachable(Function &F);

/// Deletes all blocks not reachable from the entry, fixing phis.
/// Returns true if anything was deleted.
bool removeUnreachableBlocks(Function &F);

} // namespace darm

#endif // DARM_TRANSFORM_CFGUTILS_H
