//===- Passes.h - Named transform pass registry -------------------*- C++ -*-===//
///
/// \file
/// Central registry mapping pass names to their entry points. The registry
/// is the single source of truth for what `darm_opt -passes=` accepts, for
/// the per-pass fuzz configs, and for the canonicalization stages the DARM
/// pipeline schedules — adding a pass here makes it reachable from every
/// driver at once. See docs/passes.md for the contract each entry obeys.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_PASSES_H
#define DARM_TRANSFORM_PASSES_H

#include <functional>
#include <string>
#include <vector>

namespace darm {

class Function;

/// One registered transform pass.
struct PassInfo {
  /// Name accepted by `darm_opt -passes=` and `darm_fuzz --configs`.
  std::string Name;
  /// One-line summary printed by `darm_opt -list-passes`.
  std::string Description;
  /// Entry point; returns true when the function was modified.
  std::function<bool(Function &)> Run;
};

/// All registered transform passes, in a stable order (canonicalization
/// passes first, in their recommended pipeline order, then cleanups).
const std::vector<PassInfo> &transformPassRegistry();

/// Looks up a pass by name; null when unknown.
const PassInfo *findTransformPass(const std::string &Name);

} // namespace darm

#endif // DARM_TRANSFORM_PASSES_H
