//===- GVN.h - Dominator-scoped global value numbering -------------*- C++ -*-===//
///
/// \file
/// Redundancy elimination over pure expressions: instructions are keyed by
/// (opcode, predicate/intrinsic, type, operands) and an instruction whose
/// key was already computed by a *dominating* instruction is replaced by
/// it. The walk visits blocks in reverse post-order, so within a block
/// this is local CSE and across blocks it is dominator-scoped GVN.
///
/// Only speculation-safe, non-phi, value-producing instructions
/// participate: loads (memory state), convergent calls (shfl, barrier)
/// and side-effecting ops are never merged. Commutative integer ops
/// (add/mul/and/or/xor) and icmp eq/ne match under operand swap; float
/// ops match only syntactically, since IEEE NaN propagation makes
/// a+b / b+a distinguishable bitwise.
///
/// Never touches the CFG. Part of the canonicalization pipeline before
/// darm-meld (docs/passes.md): melding two arms that recompute the same
/// subexpression is cheaper after the recomputation is gone.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_TRANSFORM_GVN_H
#define DARM_TRANSFORM_GVN_H

namespace darm {

class Function;

/// Runs dominator-scoped value numbering. Returns true if the IR changed.
bool runGVN(Function &F);

} // namespace darm

#endif // DARM_TRANSFORM_GVN_H
