//===- DiffOracle.h - Multi-config differential oracle -------------*- C++ -*-===//
///
/// \file
/// The differential oracle behind tools/darm_fuzz (docs/fuzzing.md): one
/// generated kernel is run unmelded (the reference) and through several
/// transform configurations; every configuration must leave the final
/// memory image bit-identical, the verifier clean, and the SimStats
/// counters plausible (docs/claims.md: melding must not increase dynamic
/// divergent branches, reduce ALU utilization beyond tolerance, or grow
/// the memory-instruction count). A further axis round-trips the kernel
/// through IRPrinter -> IRParser and re-diffs — including counter
/// identity, since printing must not change execution at all — so
/// printer/parser defects surface as oracle failures too. On mismatch
/// the failing case is greedily minimized (Minimizer.h) and packaged as
/// a standalone repro.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_FUZZ_DIFFORACLE_H
#define DARM_FUZZ_DIFFORACLE_H

#include "darm/check/Claims.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/support/Parallel.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace darm {

class CompileService;
class Function;

namespace fuzz {

/// One transform axis of the oracle. The callback receives a freshly
/// built kernel and mutates it; the oracle then re-simulates and diffs.
struct OracleConfig {
  std::string Name;
  std::function<void(Function &)> Transform;
};

/// The built-in transform axes: full DARM at the paper's threshold, DARM
/// at an aggressive threshold (more melds, more surface), DARM without
/// unpredication (full predication paths), and the DiamondOnly Branch
/// Fusion baseline. The print->parse round-trip axis is separate
/// (OracleOptions::RoundTrip) because it needs no transform.
std::vector<OracleConfig> defaultConfigs();

struct OracleOptions {
  bool RoundTrip = true; ///< include the IRPrinter -> IRParser axis
  /// Include the binary serialization axis (ir/Serialize.h): the
  /// reference kernel through serializeModule -> deserializeModule into
  /// a fresh Context must verify, re-serialize to identical bytes, and
  /// re-simulate to the identical memory image and counters. Binary
  /// snapshots feed the compile cache (docs/caching.md), so a byte that
  /// changes execution is a first-class miscompile, minimizable like
  /// any other axis (config "serialize").
  bool Serialize = true;
  bool Minimize = true;  ///< shrink failing cases before reporting
  /// When set, every transform axis compiles through this get-or-compile
  /// cache (core/CompileService.h) and evaluates the deserialized
  /// artifact — on hit and miss alike, so verdicts are byte-identical
  /// at any cache state. Minimizer probes (edited kernels) always take
  /// the direct path; only whole-seed axis runs are cached.
  CompileService *Cache = nullptr;
  /// Check SimStats plausibility on every transform axis (docs/claims.md)
  /// in addition to memory-image identity; violations are first-class,
  /// minimizable findings. Baselines come from the kernel run through
  /// simplifycfg+dce (the non-melding half of the pipeline), and the
  /// tolerances default to the generated-kernel profile — see
  /// check::ClaimsOptions::forGeneratedKernels() for why strict
  /// per-kernel bounds are unsound on adversarial shapes.
  bool Claims = true;
  check::ClaimsOptions ClaimsOpts = check::ClaimsOptions::forGeneratedKernels();
  /// Axes to run; empty means defaultConfigs(). Tests inject a broken
  /// transform here to exercise the mismatch path end-to-end.
  std::vector<OracleConfig> Configs;
};

struct OracleResult {
  bool Mismatch = false;
  std::string Config; ///< failing axis name ("roundtrip" for that mode)
  std::string Detail; ///< first divergence, human-readable
  std::string ReproIR; ///< (minimized) kernel text; empty when clean

  explicit operator bool() const { return Mismatch; }
};

/// Runs every axis for \p C. Stops at the first mismatching axis.
OracleResult runOracle(const FuzzCase &C,
                       const OracleOptions &O = OracleOptions());

/// Parallel seed sweep (tools/darm_fuzz, docs/performance.md): runs
/// runOracle(FuzzCase(Seed), O) for every seed of \p Seeds across
/// \p Pool's workers, invoking \p OnResult strictly in \p Seeds order
/// from the calling thread. Each seed's oracle run owns its Contexts and
/// installs its fatal-error handler per thread, so workers never share
/// IR state (Parallel.h). Results are byte-identical to a sequential
/// sweep at any pool size; OnResult returning false stops the sweep
/// exactly where a sequential loop would stop reporting (seeds already
/// in flight are discarded unreported).
void sweepSeeds(ThreadPool &Pool, const std::vector<uint64_t> &Seeds,
                const OracleOptions &O,
                const std::function<bool(uint64_t Seed, const OracleResult &R)>
                    &OnResult);

/// Serializes \p R as a standalone .darm repro: commented header
/// (seed, failing config, geometry, repro command) + kernel text. The
/// whole file is directly parseable by parseModule (headers are IR
/// comments).
std::string formatRepro(const FuzzCase &C, const OracleResult &R);

/// Reconstructs the FuzzCase + failing config name from a repro file
/// previously written by formatRepro. Returns false on a malformed
/// header.
bool parseReproHeader(const std::string &Text, FuzzCase &C,
                      std::string &Config);

/// Re-checks a parsed repro kernel: runs \p Kernel unmelded as reference,
/// then the named axis (or round-trip), and returns the mismatch result.
/// Only \p O's Claims/ClaimsOpts fields are consulted (the axis set is
/// fixed by the repro header), so `--repro --no-claims` isolates a
/// memory mismatch without the claims/cleanup gates firing first.
OracleResult checkRepro(Function &Kernel, const FuzzCase &C,
                        const std::string &Config,
                        const OracleOptions &O = OracleOptions());

} // namespace fuzz
} // namespace darm

#endif // DARM_FUZZ_DIFFORACLE_H
