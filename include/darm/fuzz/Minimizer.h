//===- Minimizer.h - Greedy repro minimization ---------------------*- C++ -*-===//
///
/// \file
/// Greedy delta-debugging of a failing fuzz case. Because every FuzzCase
/// rebuilds deterministically from its seed, a candidate reduction is
/// represented as an *edit script* replayed on a fresh build — there is no
/// need to clone IR (which would itself go through the printer/parser
/// under test). Each edit names its target by block name + ordinal, both
/// stable across deterministic rebuilds.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_FUZZ_MINIMIZER_H
#define DARM_FUZZ_MINIMIZER_H

#include "darm/fuzz/KernelGenerator.h"

#include <functional>
#include <vector>

namespace darm {

class Function;
class Module;

namespace fuzz {

/// One reduction step, addressed positionally in the edited kernel.
struct Edit {
  enum Kind : uint8_t {
    DeleteInst,    ///< drop instruction #Ordinal of Block, uses -> undef
    CollapseBranch ///< turn Block's condbr into br to successor #Arm
  };
  Kind K = DeleteInst;
  std::string Block;
  unsigned Ordinal = 0; ///< non-terminator index within Block (DeleteInst)
  unsigned Arm = 0;     ///< kept successor (CollapseBranch)
};

/// Applies \p E to \p F. Returns false when the edit no longer matches the
/// function's shape (wrong block name / ordinal / terminator kind).
bool applyEdit(Function &F, const Edit &E);

/// Rebuilds \p C's kernel into \p M and replays \p Edits in order.
/// Returns null if any edit fails to apply.
Function *buildEdited(Module &M, const FuzzCase &C,
                      const std::vector<Edit> &Edits);

/// Greedily grows an edit script that keeps \p StillFails true. \p
/// StillFails receives a candidate script and must rebuild + test it (it
/// is called O(instructions^2) times, bounded by \p MaxProbes). The
/// caller guarantees StillFails({}) is true on entry.
std::vector<Edit>
minimizeCase(const FuzzCase &C,
             const std::function<bool(const std::vector<Edit> &)> &StillFails,
             unsigned MaxProbes = 4000);

} // namespace fuzz
} // namespace darm

#endif // DARM_FUZZ_MINIMIZER_H
