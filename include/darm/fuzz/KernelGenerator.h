//===- KernelGenerator.h - Random divergent-kernel generator -------*- C++ -*-===//
///
/// \file
/// Seeded generator of structured divergent SPMD kernels for differential
/// fuzzing of the melding pipeline (docs/fuzzing.md). Each FuzzCase is a
/// pure function of its seed: the kernel IR, the launch geometry and the
/// initial memory image are all derived deterministically, so a failing
/// seed is a complete reproducer on its own.
///
/// Shape grammar (top level is uniform control flow, so barriers and the
/// convergent shfl.sync are legal there):
///
///   kernel   := prologue construct* epilogue
///   construct:= stmts | diamond | triangle | loop | barrier | shfl
///   diamond  := 'if (divergent cond)' body 'else' body [join phis]
///   triangle := 'if (divergent cond)' body [join phis]
///   body     := stmts [construct]            (depth-bounded nesting)
///   loop     := 'for (i = 0; i < trip; ++i)' body   (trip const or lane-derived)
///   shfl     := 'v = shfl.sync(value, rotated lane)'   (warp exchange)
///   stmts    := arithmetic, comparisons, selects, casts, and
///               bounds-clamped loads/stores of global + shared buffers
///
/// A case may also be multi-launch (FuzzCase::NumLaunches > 1): the same
/// kernel replays over the accumulated memory image, exercising the
/// decode-once/run-many engine path differentially.
///
/// Divergent conditions derive from tid / laneid; stores are always
/// index-clamped (urem by the buffer size) because out-of-bounds stores
/// abort the simulator by design.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_FUZZ_KERNELGENERATOR_H
#define DARM_FUZZ_KERNELGENERATOR_H

#include "darm/sim/GpuConfig.h"
#include "darm/sim/Memory.h"

#include <cstdint>
#include <string>
#include <vector>

namespace darm {

class Function;
class Module;
struct DecodedProgram;

namespace fuzz {

/// Size/shape knobs. The defaults keep a single case cheap enough that a
/// thousand-seed sweep finishes in seconds; FuzzCase then perturbs the
/// geometry per seed.
struct GenOptions {
  unsigned MaxTopConstructs = 4; ///< top-level constructs per kernel
  unsigned MaxDepth = 2;         ///< divergent-region nesting bound
  unsigned MaxLoopTrip = 4;      ///< constant loop trip bound
  bool AllowNonFinite = true;    ///< seed inf/nan constants and inputs
};

/// One self-describing fuzz case. Everything — kernel, geometry, buffer
/// sizes, memory image — is a deterministic function of Seed (plus the
/// options), so the pair (Seed, Opts) reproduces the whole experiment.
struct FuzzCase {
  uint64_t Seed = 0;
  GenOptions Opts;
  LaunchParams Launch{2, 32};
  unsigned IntElems = 64;        ///< i32 global buffer, elements
  unsigned FloatElems = 64;      ///< f32 global buffer, elements
  unsigned SharedElems = 32;     ///< i32 LDS scratch, elements
  unsigned IntInputElems = 32;   ///< read-only prefix of the i32 buffer
  unsigned FloatInputElems = 32; ///< read-only prefix of the f32 buffer
  /// Launches of the same kernel over the same (accumulating) memory.
  /// Most seeds launch once; some draw 2-3 to exercise the engine's
  /// decode-once/run-many path differentially.
  unsigned NumLaunches = 1;

  FuzzCase() = default;
  /// Derives the per-case geometry (launch dims, buffer sizes) from the
  /// seed.
  explicit FuzzCase(uint64_t Seed, const GenOptions &Opts = GenOptions());

  std::string name() const { return "fuzz" + std::to_string(Seed); }
};

/// Builds the kernel of \p C into \p M. The result is verifier-clean.
/// Signature: func @fuzz<seed>(i32 g* %ibuf, f32 g* %fbuf, i32 %n) -> void.
Function *buildFuzzKernel(Module &M, const FuzzCase &C);

/// Allocates and deterministically fills the two global buffers of \p C;
/// returns the launch argument list (ibuf, fbuf, n).
std::vector<uint64_t> setupFuzzMemory(const FuzzCase &C, GlobalMemory &Mem);

/// Simulates \p F over \p C's geometry: decodes once, then runs
/// C.NumLaunches launches over the accumulating \p Mem (which the caller
/// set up via setupFuzzMemory). A simulator abort is captured in
/// \p Fatal (empty on success) instead of terminating the process; the
/// returned stats aggregate the completed launches. Shared by the
/// differential oracle and the claims corpus runner so both measure
/// exactly the same execution.
SimStats simulateFuzzCase(Function &F, const FuzzCase &C,
                          const std::vector<uint64_t> &Args, GlobalMemory &Mem,
                          std::string *Fatal = nullptr);

/// Same execution from a pre-decoded program (e.g. a compile-cache
/// artifact's image, core/CompiledModule.h decodeFromArtifact): skips
/// decode but runs under the identical abort guard. Engine construction
/// from a program is pinned bit-identical to decoding the kernel fresh,
/// so both overloads return the same stats and memory image for the
/// same compiled kernel.
SimStats simulateFuzzCase(DecodedProgram P, const FuzzCase &C,
                          const std::vector<uint64_t> &Args, GlobalMemory &Mem,
                          std::string *Fatal = nullptr);

} // namespace fuzz
} // namespace darm

#endif // DARM_FUZZ_KERNELGENERATOR_H
