//===- Serialize.h - Binary module snapshots ---------------------*- C++ -*-===//
///
/// \file
/// A compact, versioned binary encoding of a Module that can cross the
/// per-worker-Context boundary (docs/performance.md): serializeModule
/// captures an immutable byte snapshot, and deserializeModule rebuilds
/// an identical module — same names, same block layout, same interned
/// constants — inside *any* Context. This is the transport format of the
/// compile cache (core/CompiledModule.h, docs/caching.md).
///
/// Faithfulness contract, pinned by tests/serialize_test.cpp and the
/// fuzz oracle's "serialize" axis: for any verified module M,
///
///   printModule(deserializeModule(Ctx, serializeModule(M))) ==
///       printModule(M)                         (byte-identical text)
///   serializeModule(deserializeModule(...))  ==
///       serializeModule(M)                     (byte-identical bytes)
///
/// and the deserialized kernel simulates bit-identically (SimStats and
/// memory image).
///
/// Format (version 1, little-endian; support/BinaryStream.h): a 4-byte
/// magic "DRMB" + u16 version header; the module name; an interned type
/// table (pointee-before-pointer order); an interned constant table
/// (integers as zigzag varints, floats as raw IEEE-754 bit patterns, so
/// NaN payloads survive); then each function's arguments, shared arrays,
/// block names, and per-block instruction records. Operands are tagged
/// varint references into the instruction/argument/shared/constant index
/// spaces; forward references (phis) resolve exactly like the textual
/// parser's, via placeholder-and-RAUW.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_SERIALIZE_H
#define DARM_IR_SERIALIZE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace darm {

class Context;
class Function;
class Module;

/// Serialization format version; bump on any encoding change
/// (docs/caching.md version policy: readers reject mismatches, caches
/// treat them as misses — never a silent misdecode).
inline constexpr uint16_t kModuleFormatVersion = 1;

/// Encodes \p M into the version-1 binary form. Requires well-formed IR
/// (every operand an argument / shared array / instruction of the same
/// function, or a constant); serializing what the verifier would reject
/// on those grounds returns an empty vector.
std::vector<uint8_t> serializeModule(const Module &M);

/// Canonical single-function snapshot: \p F encoded exactly as a module
/// holding only it, with the module name normalized to the empty string.
/// The bytes are therefore a pure function of the function's content —
/// independent of the owning module's name and of any sibling functions —
/// which makes their hash usable as a content-address (artifactIRHash in
/// core/CompiledModule.h), while the snapshot itself remains readable by
/// deserializeModule. Same well-formedness requirement (and empty-vector
/// failure mode) as serializeModule.
std::vector<uint8_t> serializeFunction(const Function &F);

/// Decodes a snapshot into a fresh Module owned by \p Ctx. Returns null
/// and sets \p Err on a bad magic/version or malformed bytes; never
/// reads out of range and never aborts on untrusted input.
std::unique_ptr<Module> deserializeModule(Context &Ctx, const uint8_t *Data,
                                          size_t Size,
                                          std::string *Err = nullptr);
std::unique_ptr<Module> deserializeModule(Context &Ctx,
                                          const std::vector<uint8_t> &Bytes,
                                          std::string *Err = nullptr);

} // namespace darm

#endif // DARM_IR_SERIALIZE_H
