//===- Value.h - Base of the IR value hierarchy ------------------*- C++ -*-===//
///
/// \file
/// Value is the base of the SSA value hierarchy (arguments, constants,
/// shared-memory arrays, instructions). User is a Value that references
/// other Values through an operand list; the def-use graph is kept
/// bidirectionally consistent by setOperand/replaceAllUsesWith.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_VALUE_H
#define DARM_IR_VALUE_H

#include "darm/ir/Type.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace darm {

class User;
class Function;

/// A single use of a Value by a User at operand index \p OpIdx.
struct Use {
  User *TheUser;
  unsigned OpIdx;

  bool operator==(const Use &O) const {
    return TheUser == O.TheUser && OpIdx == O.OpIdx;
  }
};

/// Base class of all SSA values.
class Value {
public:
  /// Discriminator for LLVM-style isa<>/cast<> RTTI. Instruction opcodes
  /// occupy the range [InstFirst, InstLast].
  enum class Kind : uint8_t {
    Argument,
    ConstantInt,
    ConstantFloat,
    Undef,
    SharedArray,
    // Instructions. Keep in sync with Opcode in Instruction.h.
    InstFirst,
    InstLast = InstFirst + 63,
  };

  virtual ~Value();
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  Kind getValueKind() const { return VKind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(const std::string &N) { Name = N; }
  bool hasName() const { return !Name.empty(); }

  /// All (user, operand-index) pairs that reference this value.
  const std::vector<Use> &uses() const { return Uses; }
  bool hasUses() const { return !Uses.empty(); }
  unsigned getNumUses() const { return static_cast<unsigned>(Uses.size()); }

  /// Rewrites every use of this value to refer to \p New instead.
  void replaceAllUsesWith(Value *New);

protected:
  Value(Kind K, Type *Ty) : VKind(K), Ty(Ty) {}

private:
  friend class User;

  void addUse(User *U, unsigned OpIdx) { Uses.push_back({U, OpIdx}); }
  void removeUse(User *U, unsigned OpIdx);

  Kind VKind;
  Type *Ty;
  std::string Name;
  std::vector<Use> Uses;
};

/// A Value that references other Values via an ordered operand list.
class User : public Value {
public:
  unsigned getNumOperands() const {
    return static_cast<unsigned>(Ops.size());
  }

  Value *getOperand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }

  /// Replaces operand \p I, updating both sides of the def-use graph.
  void setOperand(unsigned I, Value *V);

  const std::vector<Value *> &operands() const { return Ops; }

  static bool classof(const Value *V) {
    return V->getValueKind() >= Kind::InstFirst &&
           V->getValueKind() <= Kind::InstLast;
  }

protected:
  friend class BasicBlock; // block/function teardown detaches operands
  friend class Function;

  User(Kind K, Type *Ty) : Value(K, Ty) {}
  ~User() override { dropAllOperands(); }

  /// Appends an operand (registering the use).
  void appendOperand(Value *V);
  /// Removes the operand at \p I, shifting later operands down and
  /// re-registering their use indices.
  void removeOperand(unsigned I);
  /// Unregisters every operand use (called on destruction).
  void dropAllOperands();

private:
  std::vector<Value *> Ops;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type *Ty, const std::string &Name, Function *Parent, unsigned Idx)
      : Value(Kind::Argument, Ty), Parent(Parent), Idx(Idx) {
    setName(Name);
  }

  Function *getParent() const { return Parent; }
  unsigned getArgIndex() const { return Idx; }

  static bool classof(const Value *V) {
    return V->getValueKind() == Kind::Argument;
  }

private:
  Function *Parent;
  unsigned Idx;
};

/// Base for uniqued constants.
class Constant : public Value {
public:
  static bool classof(const Value *V) {
    Kind K = V->getValueKind();
    return K == Kind::ConstantInt || K == Kind::ConstantFloat ||
           K == Kind::Undef;
  }

protected:
  Constant(Kind K, Type *Ty) : Value(K, Ty) {}
};

/// An integer constant (i1, i32 or i64).
class ConstantInt : public Constant {
public:
  ConstantInt(Type *Ty, int64_t V) : Constant(Kind::ConstantInt, Ty), Val(V) {
    assert(Ty->isInteger() && "ConstantInt requires integer type");
  }

  int64_t getValue() const { return Val; }
  bool isZero() const { return Val == 0; }
  bool isOne() const { return Val == 1; }

  static bool classof(const Value *V) {
    return V->getValueKind() == Kind::ConstantInt;
  }

private:
  int64_t Val;
};

/// An f32 constant.
class ConstantFloat : public Constant {
public:
  ConstantFloat(Type *Ty, float V) : Constant(Kind::ConstantFloat, Ty), Val(V) {
    assert(Ty->isFloat() && "ConstantFloat requires f32");
  }

  float getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getValueKind() == Kind::ConstantFloat;
  }

private:
  float Val;
};

/// The undefined value of a type. Reading it yields an arbitrary bit
/// pattern; the simulator materializes it as zero for determinism.
class UndefValue : public Constant {
public:
  explicit UndefValue(Type *Ty) : Constant(Kind::Undef, Ty) {}

  static bool classof(const Value *V) {
    return V->getValueKind() == Kind::Undef;
  }
};

/// A statically sized per-block shared-memory (LDS) array owned by a
/// Function. Its value is a pointer into address space Shared.
class SharedArray : public Value {
public:
  SharedArray(Type *PtrTy, unsigned NumElements, const std::string &Name,
              Function *Parent)
      : Value(Kind::SharedArray, PtrTy), NumElements(NumElements),
        Parent(Parent) {
    assert(PtrTy->isPointer() &&
           PtrTy->getAddressSpace() == AddressSpace::Shared &&
           "shared array must have an LDS pointer type");
    setName(Name);
  }

  Type *getElementType() const { return getType()->getPointee(); }
  unsigned getNumElements() const { return NumElements; }
  unsigned getSizeInBytes() const {
    return NumElements * getElementType()->getStoreSizeInBytes();
  }
  Function *getParent() const { return Parent; }

  static bool classof(const Value *V) {
    return V->getValueKind() == Kind::SharedArray;
  }

private:
  unsigned NumElements;
  Function *Parent;
};

} // namespace darm

#endif // DARM_IR_VALUE_H
