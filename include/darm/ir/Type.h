//===- Type.h - IR type system ----------------------------------*- C++ -*-===//
///
/// \file
/// The DARM IR type system: a small subset of LLVM's, sufficient for GPGPU
/// kernels — void, i1, i32, i64, f32 and typed pointers qualified by an
/// address space (global or shared/LDS). Types are interned by the Context
/// and compared by pointer identity.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_TYPE_H
#define DARM_IR_TYPE_H

#include <cassert>
#include <string>

namespace darm {

class Context;

/// GPU memory address spaces, following the AMDGPU numbering the paper's
/// HIPCC toolchain uses: 1 = device-global memory, 3 = LDS (shared memory).
enum class AddressSpace : unsigned { Global = 1, Shared = 3 };

/// An IR type. Interned: two structurally equal types are the same object.
class Type {
public:
  enum class Kind { Void, Int1, Int32, Int64, Float, Pointer };

  Kind getKind() const { return K; }

  bool isVoid() const { return K == Kind::Void; }
  bool isInt1() const { return K == Kind::Int1; }
  bool isInt32() const { return K == Kind::Int32; }
  bool isInt64() const { return K == Kind::Int64; }
  bool isFloat() const { return K == Kind::Float; }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isInteger() const {
    return K == Kind::Int1 || K == Kind::Int32 || K == Kind::Int64;
  }
  /// True for types a register can hold (everything but void).
  bool isFirstClass() const { return K != Kind::Void; }

  /// Bit width of an integer type.
  unsigned getIntegerBitWidth() const {
    assert(isInteger() && "not an integer type");
    switch (K) {
    case Kind::Int1:
      return 1;
    case Kind::Int32:
      return 32;
    default:
      return 64;
    }
  }

  /// Pointee type of a pointer.
  Type *getPointee() const {
    assert(isPointer() && "not a pointer type");
    return Pointee;
  }

  /// Address space of a pointer.
  AddressSpace getAddressSpace() const {
    assert(isPointer() && "not a pointer type");
    return AS;
  }

  /// Size in bytes when stored in memory (used by gep scaling and the
  /// simulator's memory model). i1 occupies one byte.
  unsigned getStoreSizeInBytes() const;

  /// Renders the type in the textual IR syntax, e.g. "i32 addrspace(3)*".
  std::string getName() const;

private:
  friend class Context;

  explicit Type(Kind K) : K(K) {}
  Type(Type *Pointee, AddressSpace AS)
      : K(Kind::Pointer), Pointee(Pointee), AS(AS) {}

  Kind K;
  Type *Pointee = nullptr;
  AddressSpace AS = AddressSpace::Global;
};

} // namespace darm

#endif // DARM_IR_TYPE_H
