//===- Context.h - Ownership of types and constants -------------*- C++ -*-===//
///
/// \file
/// The Context owns and interns all Types and Constants, mirroring
/// llvm::LLVMContext. Every Module is created against a Context, and values
/// from different contexts must never mix.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_CONTEXT_H
#define DARM_IR_CONTEXT_H

#include "darm/ir/Type.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace darm {

class ConstantInt;
class ConstantFloat;
class UndefValue;

/// Owns types and uniqued constants.
class Context {
public:
  Context();
  ~Context();

  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  /// Primitive type accessors. Each returns the unique instance.
  Type *getVoidTy() { return VoidTy.get(); }
  Type *getInt1Ty() { return Int1Ty.get(); }
  Type *getInt32Ty() { return Int32Ty.get(); }
  Type *getInt64Ty() { return Int64Ty.get(); }
  Type *getFloatTy() { return FloatTy.get(); }

  /// Returns the unique pointer type to \p Pointee in \p AS.
  Type *getPointerTy(Type *Pointee, AddressSpace AS);

  /// Returns the unique integer constant of \p Ty with value \p V
  /// (sign-extended storage; i1 uses 0/1).
  ConstantInt *getConstantInt(Type *Ty, int64_t V);
  /// Shorthand for i32 constants, the common case in kernels.
  ConstantInt *getInt32(int32_t V);
  /// Shorthand for i1 constants.
  ConstantInt *getBool(bool V);

  /// Returns the unique f32 constant with value \p V.
  ConstantFloat *getConstantFloat(float V);

  /// Returns the unique undef value of type \p Ty.
  UndefValue *getUndef(Type *Ty);

private:
  std::unique_ptr<Type> VoidTy, Int1Ty, Int32Ty, Int64Ty, FloatTy;
  std::vector<std::unique_ptr<Type>> PointerTys;
  std::map<std::pair<Type *, int64_t>, std::unique_ptr<ConstantInt>> IntConsts;
  std::map<uint32_t, std::unique_ptr<ConstantFloat>> FloatConsts;
  std::map<Type *, std::unique_ptr<UndefValue>> Undefs;
};

} // namespace darm

#endif // DARM_IR_CONTEXT_H
