//===- BasicBlock.h - CFG node ----------------------------------*- C++ -*-===//
///
/// \file
/// A basic block: a straight-line instruction sequence terminated by a
/// branch or return. Predecessor lists are maintained automatically when
/// terminators are inserted, removed or retargeted.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_BASICBLOCK_H
#define DARM_IR_BASICBLOCK_H

#include "darm/ir/Instruction.h"

#include <list>
#include <string>
#include <vector>

namespace darm {

class Function;

/// A node of the control-flow graph.
class BasicBlock {
public:
  using iterator = std::list<Instruction *>::iterator;
  using const_iterator = std::list<Instruction *>::const_iterator;

  BasicBlock(Function *Parent, const std::string &Name);
  ~BasicBlock();

  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  Function *getParent() const { return Parent; }
  const std::string &getName() const { return Name; }
  void setName(const std::string &N) { Name = N; }

  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front(); }
  Instruction *back() const { return Insts.back(); }

  /// Returns the block terminator, or null if the block is not yet
  /// terminated (legal only mid-construction).
  Instruction *getTerminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back();
  }

  /// Position of the first non-phi instruction.
  iterator getFirstNonPhi();

  /// The phi nodes leading the block.
  std::vector<PhiInst *> phis() const;

  /// Inserts \p I before \p Pos, taking ownership. If \p I is a terminator
  /// it must be placed at the end, and its CFG edges are registered.
  void insert(iterator Pos, Instruction *I);
  /// Appends \p I at the end of the block.
  void push_back(Instruction *I) { insert(end(), I); }
  /// Inserts \p I before the terminator (or at the end if unterminated).
  void insertBeforeTerminator(Instruction *I);

  /// Unlinks \p I without deleting it (CFG edges of terminators are
  /// unregistered).
  void remove(Instruction *I);
  /// Unlinks and deletes \p I.
  void erase(Instruction *I);

  /// Predecessor blocks. May contain duplicates when a conditional branch
  /// targets the same block on both edges.
  const std::vector<BasicBlock *> &predecessors() const { return Preds; }
  unsigned getNumPredecessors() const {
    return static_cast<unsigned>(Preds.size());
  }
  /// The unique predecessor, or null if there are zero or several distinct
  /// predecessors.
  BasicBlock *getSinglePredecessor() const;

  /// Successor blocks read off the terminator (empty if unterminated).
  std::vector<BasicBlock *> successors() const;
  unsigned getNumSuccessors() const;
  /// The unique successor, or null.
  BasicBlock *getSingleSuccessor() const;
  bool isSuccessor(const BasicBlock *BB) const;

  /// Removes all phi entries coming from \p Pred (called when the edge
  /// Pred->this is deleted).
  void removePhiEntriesFor(BasicBlock *Pred);
  /// Renames the incoming block \p Old to \p New in all phis.
  void replacePhiIncomingBlock(BasicBlock *Old, BasicBlock *New);

  /// Splits this block before \p Pos: instructions from \p Pos onward move
  /// into a new block named \p NewName, this block gets an unconditional
  /// branch to it, and phi/CFG bookkeeping is updated. Returns the new
  /// block (inserted after this one in the function layout).
  BasicBlock *splitBefore(iterator Pos, const std::string &NewName);

private:
  friend class Instruction;

  void addPredecessor(BasicBlock *P) { Preds.push_back(P); }
  void removePredecessor(BasicBlock *P);

  Function *Parent;
  std::string Name;
  std::list<Instruction *> Insts;
  std::vector<BasicBlock *> Preds;
};

} // namespace darm

#endif // DARM_IR_BASICBLOCK_H
