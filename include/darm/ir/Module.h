//===- Module.h - Top-level IR container -------------------------*- C++ -*-===//
///
/// \file
/// A Module owns a set of kernel Functions, all created against one
/// Context.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_MODULE_H
#define DARM_IR_MODULE_H

#include "darm/ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace darm {

class Context;

/// Container of kernels.
class Module {
public:
  Module(Context &Ctx, const std::string &Name) : Ctx(Ctx), Name(Name) {}

  Context &getContext() const { return Ctx; }
  const std::string &getName() const { return Name; }

  /// Creates a kernel function owned by this module.
  Function *createFunction(const std::string &FnName, Type *RetTy,
                           const Function::ParamList &Params) {
    Functions.push_back(
        std::make_unique<Function>(this, FnName, RetTy, Params));
    return Functions.back().get();
  }

  /// Finds a function by name, or null.
  Function *getFunction(const std::string &FnName) const {
    for (const auto &F : Functions)
      if (F->getName() == FnName)
        return F.get();
    return nullptr;
  }

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

private:
  Context &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace darm

#endif // DARM_IR_MODULE_H
