//===- IRPrinter.h - Textual IR emission -------------------------*- C++ -*-===//
///
/// \file
/// Renders modules/functions/instructions in the DARM textual IR syntax.
/// The output of printFunction parses back with IRParser to an isomorphic
/// function (round-trip property covered by tests).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_IRPRINTER_H
#define DARM_IR_IRPRINTER_H

#include <string>

namespace darm {

class Module;
class Function;
class BasicBlock;
class Instruction;
class Value;

/// Renders an operand reference ("%x", "@buf", "42", "true", "undef").
std::string printOperand(const Value *V);

/// Renders one instruction (no trailing newline).
std::string printInstruction(const Instruction &I);

/// Renders one basic block including its label.
std::string printBlock(const BasicBlock &BB);

/// Renders a whole function.
std::string printFunction(const Function &F);

/// Renders every function in the module.
std::string printModule(const Module &M);

/// Renders the function's CFG in Graphviz DOT format, one node per block
/// with its instructions; divergent-branch edges labeled T/F.
std::string printDot(const Function &F);

} // namespace darm

#endif // DARM_IR_IRPRINTER_H
