//===- IRBuilder.h - Convenience IR construction -----------------*- C++ -*-===//
///
/// \file
/// IRBuilder inserts instructions at a tracked insertion point and gives
/// every value-producing instruction a function-unique name, so freshly
/// built IR always round-trips through the printer/parser.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_IRBUILDER_H
#define DARM_IR_IRBUILDER_H

#include "darm/ir/BasicBlock.h"
#include "darm/ir/Context.h"
#include "darm/ir/Function.h"
#include "darm/ir/Instruction.h"

#include <string>
#include <vector>

namespace darm {

/// Builds instructions at an insertion point.
class IRBuilder {
public:
  explicit IRBuilder(Context &Ctx) : Ctx(Ctx) {}
  IRBuilder(Context &Ctx, BasicBlock *BB) : Ctx(Ctx) { setInsertPoint(BB); }

  Context &getContext() const { return Ctx; }

  /// Inserts at the end of \p BB.
  void setInsertPoint(BasicBlock *BB) {
    Block = BB;
    Pos = BB->end();
  }
  /// Inserts immediately before \p I.
  void setInsertPoint(Instruction *I) {
    Block = I->getParent();
    Pos = I->getIterator();
  }
  BasicBlock *getInsertBlock() const { return Block; }

  // -- Constants ----------------------------------------------------------
  ConstantInt *getInt32(int32_t V) { return Ctx.getInt32(V); }
  ConstantInt *getInt64(int64_t V) {
    return Ctx.getConstantInt(Ctx.getInt64Ty(), V);
  }
  ConstantInt *getBool(bool V) { return Ctx.getBool(V); }
  ConstantFloat *getFloat(float V) { return Ctx.getConstantFloat(V); }

  // -- Arithmetic ----------------------------------------------------------
  Value *createBinary(Opcode Op, Value *L, Value *R,
                      const std::string &Name = "");
  Value *createAdd(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Add, L, R, Name);
  }
  Value *createSub(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Sub, L, R, Name);
  }
  Value *createMul(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Mul, L, R, Name);
  }
  Value *createSDiv(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::SDiv, L, R, Name);
  }
  Value *createSRem(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::SRem, L, R, Name);
  }
  Value *createUDiv(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::UDiv, L, R, Name);
  }
  Value *createURem(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::URem, L, R, Name);
  }
  Value *createAnd(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::And, L, R, Name);
  }
  Value *createOr(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Or, L, R, Name);
  }
  Value *createXor(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Xor, L, R, Name);
  }
  Value *createShl(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Shl, L, R, Name);
  }
  Value *createLShr(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::LShr, L, R, Name);
  }
  Value *createAShr(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::AShr, L, R, Name);
  }
  Value *createFAdd(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::FAdd, L, R, Name);
  }
  Value *createFSub(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::FSub, L, R, Name);
  }
  Value *createFMul(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::FMul, L, R, Name);
  }
  Value *createFDiv(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::FDiv, L, R, Name);
  }

  // -- Comparisons ---------------------------------------------------------
  Value *createICmp(ICmpPred Pred, Value *L, Value *R,
                    const std::string &Name = "");
  Value *createFCmp(FCmpPred Pred, Value *L, Value *R,
                    const std::string &Name = "");

  // -- Casts ----------------------------------------------------------------
  Value *createCast(Opcode Op, Value *V, Type *DestTy,
                    const std::string &Name = "");
  Value *createZExt(Value *V, Type *DestTy, const std::string &Name = "") {
    return createCast(Opcode::ZExt, V, DestTy, Name);
  }
  Value *createSExt(Value *V, Type *DestTy, const std::string &Name = "") {
    return createCast(Opcode::SExt, V, DestTy, Name);
  }
  Value *createTrunc(Value *V, Type *DestTy, const std::string &Name = "") {
    return createCast(Opcode::Trunc, V, DestTy, Name);
  }

  // -- Memory ----------------------------------------------------------------
  Value *createLoad(Value *Ptr, const std::string &Name = "");
  Instruction *createStore(Value *V, Value *Ptr);
  Value *createGep(Value *Ptr, Value *Index, const std::string &Name = "");
  /// load(gep(Ptr, Index)) in one call.
  Value *createLoadAt(Value *Ptr, Value *Index, const std::string &Name = "");
  /// store(V, gep(Ptr, Index)) in one call.
  void createStoreAt(Value *V, Value *Ptr, Value *Index);

  // -- Misc -------------------------------------------------------------------
  Value *createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                      const std::string &Name = "");
  PhiInst *createPhi(Type *Ty, const std::string &Name = "");
  Value *createCall(Intrinsic IID, const std::vector<Value *> &Args = {},
                    const std::string &Name = "");
  Value *createThreadIdX(const std::string &Name = "tid") {
    return createCall(Intrinsic::TidX, {}, Name);
  }
  Value *createBlockDimX(const std::string &Name = "ntid") {
    return createCall(Intrinsic::NTidX, {}, Name);
  }
  Value *createBlockIdX(const std::string &Name = "ctaid") {
    return createCall(Intrinsic::CTAidX, {}, Name);
  }
  Value *createGridDimX(const std::string &Name = "nctaid") {
    return createCall(Intrinsic::NCTAidX, {}, Name);
  }
  void createBarrier() { createCall(Intrinsic::Barrier); }

  // -- Terminators -------------------------------------------------------------
  Instruction *createBr(BasicBlock *Target);
  Instruction *createCondBr(Value *Cond, BasicBlock *TrueBB,
                            BasicBlock *FalseBB);
  Instruction *createRet(Value *V = nullptr);

  /// Inserts an already-built instruction at the insertion point, naming it
  /// if it produces a value.
  Instruction *insert(Instruction *I, const std::string &Name = "");

  /// Names the *next* value-producing instruction created through this
  /// builder (used by the parser, which knows the name before it knows
  /// the instruction). One-shot.
  void setNextName(const std::string &Name) { NextName = Name; }

private:
  Context &Ctx;
  BasicBlock *Block = nullptr;
  BasicBlock::iterator Pos{};
  std::string NextName;
};

} // namespace darm

#endif // DARM_IR_IRBUILDER_H
