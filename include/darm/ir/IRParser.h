//===- IRParser.h - Textual IR parsing ---------------------------*- C++ -*-===//
///
/// \file
/// Parses the DARM textual IR syntax emitted by IRPrinter. Parsing is
/// fallible (malformed input is an environment error, not a bug): failures
/// return null and fill an error string with line information.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_IRPARSER_H
#define DARM_IR_IRPARSER_H

#include <memory>
#include <string>

namespace darm {

class Context;
class Module;
class Function;

/// Parses a module (a sequence of `func` definitions) from \p Text.
/// Returns null and sets \p Error on failure.
std::unique_ptr<Module> parseModule(Context &Ctx, const std::string &Text,
                                    std::string *Error = nullptr);

/// Parses a single function into \p M. Returns null on failure.
Function *parseFunctionInto(Module &M, const std::string &Text,
                            std::string *Error = nullptr);

} // namespace darm

#endif // DARM_IR_IRPARSER_H
