//===- Instruction.h - IR instruction hierarchy ------------------*- C++ -*-===//
///
/// \file
/// The instruction set of the DARM IR: the LLVM-IR subset that GPGPU
/// kernels compiled by the paper's pipeline exercise. Notable semantic
/// choice: every instruction is total — `sdiv`/`srem`/`udiv`/`urem` by
/// zero are *defined* to yield 0, and `fptosi` of NaN yields 0 while
/// out-of-range values saturate to the destination's limits (instead of
/// UB) — so that full predication may hoist them across control flow
/// without changing program behaviour; the simulator implements the same
/// rules.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_INSTRUCTION_H
#define DARM_IR_INSTRUCTION_H

#include "darm/ir/Value.h"
#include "darm/support/Casting.h"

#include <list>

namespace darm {

class BasicBlock;
class Function;

/// Instruction opcodes. Kept in sync with Value::Kind's instruction range.
enum class Opcode : uint8_t {
  // Terminators.
  Br,
  CondBr,
  Ret,
  // Integer arithmetic and logic.
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  UDiv,
  URem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Floating point arithmetic.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Comparisons.
  ICmp,
  FCmp,
  // Casts.
  ZExt,
  SExt,
  Trunc,
  SIToFP,
  FPToSI,
  // Memory.
  Load,
  Store,
  Gep,
  // Other.
  Phi,
  Select,
  Call,
  NumOpcodes
};

/// Returns the mnemonic for \p Op ("add", "condbr", ...).
const char *getOpcodeName(Opcode Op);

/// Integer comparison predicates.
enum class ICmpPred : uint8_t { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };
/// Ordered float comparison predicates.
enum class FCmpPred : uint8_t { OEQ, ONE, OLT, OLE, OGT, OGE };

const char *getPredName(ICmpPred P);
const char *getPredName(FCmpPred P);

/// GPU intrinsics callable via the Call opcode.
enum class Intrinsic : uint8_t {
  TidX,    ///< thread index within the block (i32)
  NTidX,   ///< block dimension (i32)
  CTAidX,  ///< block index within the grid (i32)
  NCTAidX, ///< grid dimension (i32)
  LaneId,  ///< lane index within the warp (i32)
  Barrier, ///< __syncthreads(): block-wide barrier (void)
  ShflSync ///< warp shuffle (i32 value, i32 lane) -> i32; convergent
};

const char *getIntrinsicName(Intrinsic IID);

/// Base class of all instructions.
class Instruction : public User {
public:
  using BlockPos = std::list<Instruction *>::iterator;

  Opcode getOpcode() const {
    return static_cast<Opcode>(static_cast<uint8_t>(getValueKind()) -
                               static_cast<uint8_t>(Kind::InstFirst));
  }
  const char *getOpcodeName() const { return darm::getOpcodeName(getOpcode()); }

  BasicBlock *getParent() const { return Parent; }
  Function *getFunction() const;

  bool isTerminator() const {
    Opcode Op = getOpcode();
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
  }
  bool isBinaryOp() const {
    Opcode Op = getOpcode();
    return Op >= Opcode::Add && Op <= Opcode::FDiv;
  }
  bool isCast() const {
    Opcode Op = getOpcode();
    return Op >= Opcode::ZExt && Op <= Opcode::FPToSI;
  }
  bool isPhi() const { return getOpcode() == Opcode::Phi; }

  bool mayReadMemory() const { return getOpcode() == Opcode::Load; }
  bool mayWriteMemory() const { return getOpcode() == Opcode::Store; }
  /// True if removing the instruction (when unused) changes behaviour.
  bool hasSideEffects() const;
  /// True for warp/block-synchronizing operations that must not be moved
  /// into or out of divergent control flow (barrier, shfl).
  bool isConvergent() const;
  /// True if the instruction can be speculated (executed with its operands
  /// under a wider mask than the original program). All pure ops qualify;
  /// loads do not (out-of-bounds), nor do convergent or side-effecting ops.
  bool isSafeToSpeculate() const;

  /// Number of successor blocks (terminators only; 0 for Ret).
  unsigned getNumSuccessors() const;
  BasicBlock *getSuccessor(unsigned I) const;
  /// Retargets successor \p I, maintaining predecessor lists if linked.
  void setSuccessor(unsigned I, BasicBlock *BB);
  /// Replaces every occurrence of \p Old in the successor list with \p New.
  void replaceSuccessor(BasicBlock *Old, BasicBlock *New);

  /// Unlinks from the parent block without deleting.
  void removeFromParent();
  /// Unlinks from the parent block and deletes this instruction.
  void eraseFromParent();
  /// Moves this instruction immediately before \p Before (possibly in a
  /// different block).
  void moveBefore(Instruction *Before);

  /// Creates a copy of this instruction with identical operands and
  /// payload. The clone is unnamed and not inserted anywhere.
  Instruction *clone() const;

  /// Drops every operand reference (LLVM's dropAllReferences); used when
  /// deleting groups of mutually-referencing dead instructions.
  void dropAllReferences() { dropAllOperands(); }

  /// Returns this instruction's position within its parent block.
  BlockPos getIterator() const {
    assert(Parent && "instruction not in a block");
    return Pos;
  }

  static bool classof(const Value *V) {
    return V->getValueKind() >= Kind::InstFirst &&
           V->getValueKind() <= Kind::InstLast;
  }

protected:
  Instruction(Opcode Op, Type *Ty)
      : User(static_cast<Kind>(static_cast<uint8_t>(Kind::InstFirst) +
                               static_cast<uint8_t>(Op)),
             Ty) {}

  /// Hook for clone(); each subclass copies its payload.
  virtual Instruction *cloneImpl() const = 0;

private:
  friend class BasicBlock;

  /// Registers/unregisters CFG edges implied by a terminator. Called by
  /// BasicBlock on insertion/removal.
  void linkSuccessors();
  void unlinkSuccessors();

  BasicBlock *Parent = nullptr;
  BlockPos Pos{};
};

/// Integer/float binary operation (Add .. FDiv).
class BinaryInst : public Instruction {
public:
  BinaryInst(Opcode Op, Value *L, Value *R) : Instruction(Op, L->getType()) {
    assert(L->getType() == R->getType() && "binary operand type mismatch");
    appendOperand(L);
    appendOperand(R);
  }

  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->isBinaryOp();
  }

protected:
  Instruction *cloneImpl() const override {
    return new BinaryInst(getOpcode(), getOperand(0), getOperand(1));
  }
};

/// Integer comparison producing i1.
class ICmpInst : public Instruction {
public:
  ICmpInst(ICmpPred Pred, Value *L, Value *R, Type *I1Ty)
      : Instruction(Opcode::ICmp, I1Ty), Pred(Pred) {
    assert(L->getType() == R->getType() && "icmp operand type mismatch");
    appendOperand(L);
    appendOperand(R);
  }

  ICmpPred getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::ICmp;
  }

protected:
  Instruction *cloneImpl() const override {
    return new ICmpInst(Pred, getOperand(0), getOperand(1), getType());
  }

private:
  ICmpPred Pred;
};

/// Ordered float comparison producing i1.
class FCmpInst : public Instruction {
public:
  FCmpInst(FCmpPred Pred, Value *L, Value *R, Type *I1Ty)
      : Instruction(Opcode::FCmp, I1Ty), Pred(Pred) {
    assert(L->getType() == R->getType() && "fcmp operand type mismatch");
    appendOperand(L);
    appendOperand(R);
  }

  FCmpPred getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::FCmp;
  }

protected:
  Instruction *cloneImpl() const override {
    return new FCmpInst(Pred, getOperand(0), getOperand(1), getType());
  }

private:
  FCmpPred Pred;
};

/// Conversion between first-class types (ZExt/SExt/Trunc/SIToFP/FPToSI).
class CastInst : public Instruction {
public:
  CastInst(Opcode Op, Value *V, Type *DestTy) : Instruction(Op, DestTy) {
    appendOperand(V);
  }

  Value *getSource() const { return getOperand(0); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->isCast();
  }

protected:
  Instruction *cloneImpl() const override {
    return new CastInst(getOpcode(), getOperand(0), getType());
  }
};

/// Load from a typed pointer.
class LoadInst : public Instruction {
public:
  explicit LoadInst(Value *Ptr)
      : Instruction(Opcode::Load, Ptr->getType()->getPointee()) {
    appendOperand(Ptr);
  }

  Value *getPointer() const { return getOperand(0); }
  AddressSpace getAddressSpace() const {
    return getPointer()->getType()->getAddressSpace();
  }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Load;
  }

protected:
  Instruction *cloneImpl() const override { return new LoadInst(getOperand(0)); }
};

/// Store to a typed pointer.
class StoreInst : public Instruction {
public:
  StoreInst(Value *V, Value *Ptr, Type *VoidTy)
      : Instruction(Opcode::Store, VoidTy) {
    assert(Ptr->getType()->isPointer() &&
           Ptr->getType()->getPointee() == V->getType() &&
           "store value/pointer type mismatch");
    appendOperand(V);
    appendOperand(Ptr);
  }

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointer() const { return getOperand(1); }
  AddressSpace getAddressSpace() const {
    return getPointer()->getType()->getAddressSpace();
  }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Store;
  }

protected:
  Instruction *cloneImpl() const override {
    return new StoreInst(getOperand(0), getOperand(1), getType());
  }
};

/// Pointer arithmetic: result = base + index * sizeof(pointee). The result
/// has the same pointer type as the base.
class GepInst : public Instruction {
public:
  GepInst(Value *Ptr, Value *Index) : Instruction(Opcode::Gep, Ptr->getType()) {
    assert(Ptr->getType()->isPointer() && "gep base must be a pointer");
    assert(Index->getType()->isInteger() && "gep index must be an integer");
    appendOperand(Ptr);
    appendOperand(Index);
  }

  Value *getPointer() const { return getOperand(0); }
  Value *getIndex() const { return getOperand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Gep;
  }

protected:
  Instruction *cloneImpl() const override {
    return new GepInst(getOperand(0), getOperand(1));
  }
};

/// Conditional move.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(Opcode::Select, TrueV->getType()) {
    assert(Cond->getType()->isInt1() && "select condition must be i1");
    assert(TrueV->getType() == FalseV->getType() &&
           "select arm type mismatch");
    appendOperand(Cond);
    appendOperand(TrueV);
    appendOperand(FalseV);
  }

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Select;
  }

protected:
  Instruction *cloneImpl() const override {
    return new SelectInst(getOperand(0), getOperand(1), getOperand(2));
  }
};

/// SSA phi node. Operand i is the value flowing from incoming block i;
/// the incoming block list is kept parallel to the operand list.
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type *Ty) : Instruction(Opcode::Phi, Ty) {}

  unsigned getNumIncoming() const { return getNumOperands(); }
  Value *getIncomingValue(unsigned I) const { return getOperand(I); }
  void setIncomingValue(unsigned I, Value *V) { setOperand(I, V); }
  BasicBlock *getIncomingBlock(unsigned I) const {
    assert(I < Blocks.size() && "phi incoming index out of range");
    return Blocks[I];
  }
  void setIncomingBlock(unsigned I, BasicBlock *BB) {
    assert(I < Blocks.size() && "phi incoming index out of range");
    Blocks[I] = BB;
  }

  void addIncoming(Value *V, BasicBlock *BB) {
    assert(V->getType() == getType() && "phi incoming type mismatch");
    appendOperand(V);
    Blocks.push_back(BB);
  }

  /// Removes incoming entry \p I.
  void removeIncoming(unsigned I) {
    removeOperand(I);
    Blocks.erase(Blocks.begin() + I);
  }

  /// Returns the index of the first entry for \p BB, or -1.
  int getBlockIndex(const BasicBlock *BB) const {
    for (unsigned I = 0, E = static_cast<unsigned>(Blocks.size()); I != E; ++I)
      if (Blocks[I] == BB)
        return static_cast<int>(I);
    return -1;
  }

  /// Returns the value for predecessor \p BB; asserts it exists.
  Value *getIncomingValueForBlock(const BasicBlock *BB) const {
    int Idx = getBlockIndex(BB);
    assert(Idx >= 0 && "phi has no entry for block");
    return getIncomingValue(static_cast<unsigned>(Idx));
  }

  /// If every incoming value is the same (ignoring self-references),
  /// returns it; otherwise null. With \p IgnoreUndef, undef entries also
  /// act as wildcards — callers must then prove the returned value
  /// dominates this phi before substituting it.
  Value *getUniqueIncomingValue(bool IgnoreUndef = false) const;

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Phi;
  }

protected:
  Instruction *cloneImpl() const override {
    auto *P = new PhiInst(getType());
    for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
      P->addIncoming(getIncomingValue(I), getIncomingBlock(I));
    return P;
  }

private:
  std::vector<BasicBlock *> Blocks;
};

/// Unconditional branch.
class BrInst : public Instruction {
public:
  BrInst(BasicBlock *Target, Type *VoidTy)
      : Instruction(Opcode::Br, VoidTy), Target(Target) {}

  BasicBlock *getTarget() const { return Target; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Br;
  }

protected:
  Instruction *cloneImpl() const override {
    return new BrInst(Target, getType());
  }

private:
  friend class Instruction;
  BasicBlock *Target;
};

/// Two-way conditional branch.
class CondBrInst : public Instruction {
public:
  CondBrInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB, Type *VoidTy)
      : Instruction(Opcode::CondBr, VoidTy), TrueBB(TrueBB), FalseBB(FalseBB) {
    assert(Cond->getType()->isInt1() && "branch condition must be i1");
    appendOperand(Cond);
  }

  Value *getCondition() const { return getOperand(0); }
  void setCondition(Value *C) { setOperand(0, C); }
  BasicBlock *getTrueSuccessor() const { return TrueBB; }
  BasicBlock *getFalseSuccessor() const { return FalseBB; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::CondBr;
  }

protected:
  Instruction *cloneImpl() const override {
    return new CondBrInst(getOperand(0), TrueBB, FalseBB, getType());
  }

private:
  friend class Instruction;
  BasicBlock *TrueBB;
  BasicBlock *FalseBB;
};

/// Function return; kernels return void, so the value is optional.
class RetInst : public Instruction {
public:
  explicit RetInst(Type *VoidTy, Value *V = nullptr)
      : Instruction(Opcode::Ret, VoidTy) {
    if (V)
      appendOperand(V);
  }

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    assert(hasReturnValue() && "ret void has no value");
    return getOperand(0);
  }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Ret;
  }

protected:
  Instruction *cloneImpl() const override {
    return new RetInst(getType(), hasReturnValue() ? getOperand(0) : nullptr);
  }
};

/// Call to a GPU intrinsic.
class CallInst : public Instruction {
public:
  CallInst(Intrinsic IID, Type *RetTy, const std::vector<Value *> &Args)
      : Instruction(Opcode::Call, RetTy), IID(IID) {
    for (Value *A : Args)
      appendOperand(A);
  }

  Intrinsic getIntrinsic() const { return IID; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Call;
  }

protected:
  Instruction *cloneImpl() const override {
    return new CallInst(IID, getType(), operands());
  }

private:
  Intrinsic IID;
};

} // namespace darm

#endif // DARM_IR_INSTRUCTION_H
