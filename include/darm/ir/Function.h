//===- Function.h - GPU kernel function --------------------------*- C++ -*-===//
///
/// \file
/// A Function models one SPMD GPU kernel: an argument list, per-block
/// shared-memory arrays, and a CFG of basic blocks whose first block is the
/// entry. Functions own their blocks and uniquify value/block names so the
/// textual form round-trips through the parser.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_IR_FUNCTION_H
#define DARM_IR_FUNCTION_H

#include "darm/ir/BasicBlock.h"
#include "darm/ir/Value.h"

#include <list>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace darm {

class Context;
class Module;

/// One GPU kernel.
class Function {
public:
  using ParamList = std::vector<std::pair<Type *, std::string>>;
  using block_iterator = std::list<BasicBlock *>::iterator;
  using const_block_iterator = std::list<BasicBlock *>::const_iterator;

  Function(Module *Parent, const std::string &Name, Type *RetTy,
           const ParamList &Params);
  ~Function();

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  Module *getParent() const { return Parent; }
  Context &getContext() const;
  const std::string &getName() const { return Name; }
  Type *getReturnType() const { return RetTy; }

  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *getArg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }
  const std::vector<std::unique_ptr<Argument>> &args() const { return Args; }

  /// Declares a shared-memory (LDS) array of \p NumElements elements of
  /// \p ElemTy; returns its pointer value.
  SharedArray *createSharedArray(Type *ElemTy, unsigned NumElements,
                                 const std::string &Name);
  const std::vector<std::unique_ptr<SharedArray>> &sharedArrays() const {
    return Shareds;
  }
  /// Total LDS bytes this kernel statically allocates per block.
  unsigned getSharedMemoryBytes() const;

  /// Creates an (empty) block appended to the layout, or inserted before
  /// \p InsertBefore when given.
  BasicBlock *createBlock(const std::string &Name,
                          BasicBlock *InsertBefore = nullptr);
  /// Unlinks and deletes \p BB. The block must have no predecessors and
  /// its values no remaining uses.
  void eraseBlock(BasicBlock *BB);
  /// Moves \p BB to just before \p Before in the layout (printing order
  /// only; no semantic effect).
  void moveBlockBefore(BasicBlock *BB, BasicBlock *Before);

  BasicBlock &getEntryBlock() const {
    assert(!Blocks.empty() && "function has no blocks");
    return *Blocks.front();
  }

  block_iterator begin() { return Blocks.begin(); }
  block_iterator end() { return Blocks.end(); }
  const_block_iterator begin() const { return Blocks.begin(); }
  const_block_iterator end() const { return Blocks.end(); }
  size_t getNumBlocks() const { return Blocks.size(); }
  bool empty() const { return Blocks.empty(); }

  /// Blocks in layout order as a vector (convenient for analyses).
  std::vector<BasicBlock *> getBlockVector() const {
    return {Blocks.begin(), Blocks.end()};
  }

  /// Returns a function-unique name derived from \p Base ("x" -> "x.1" on
  /// collision). Registers the result.
  std::string uniqueName(const std::string &Base);

  /// Finds a block by name (linear scan; for tests and the parser).
  BasicBlock *getBlockByName(const std::string &N) const;

  /// Counts all instructions across all blocks.
  size_t getInstructionCount() const;

private:
  Module *Parent;
  std::string Name;
  Type *RetTy;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<SharedArray>> Shareds;
  std::list<BasicBlock *> Blocks;
  std::unordered_set<std::string> UsedNames;
  unsigned NextId = 0;
};

} // namespace darm

#endif // DARM_IR_FUNCTION_H
