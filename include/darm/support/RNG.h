//===- RNG.h - Deterministic random number generation -----------*- C++ -*-===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) used by workload
/// generators and property-based tests. We avoid std::mt19937 so that
/// streams are reproducible across standard library implementations.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_RNG_H
#define DARM_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace darm {

/// SplitMix64 generator. Deterministic for a given seed on every platform.
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0) is meaningless");
    return next() % Bound;
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(nextBelow(
                    static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

  /// Returns a float uniform in [0, 1).
  float nextFloat() {
    return static_cast<float>(next() >> 40) / static_cast<float>(1ULL << 24);
  }

private:
  uint64_t State;
};

} // namespace darm

#endif // DARM_SUPPORT_RNG_H
