//===- BinaryStream.h - Portable binary encode/decode ------------*- C++ -*-===//
///
/// \file
/// The byte-level writer/reader behind the serialized artifact formats
/// (ir/Serialize.h module snapshots, the DecodedProgram image inside a
/// CompiledModule). Everything is explicit little-endian byte
/// composition — no struct memcpy, no host-endianness leaks — so bytes
/// written on any platform decode on any other (docs/caching.md version
/// policy).
///
/// Unsigned integers use LEB128 varints (field values here are small:
/// indices, counts); signed values go through zigzag first so small
/// negatives stay small. Floats are carried as their raw IEEE-754 bit
/// patterns, never through text or double conversion, so NaN payloads
/// and signed zeros round-trip bit-exactly.
///
/// ByteReader is total: reads past the end set a sticky failure flag and
/// return zeros instead of touching out-of-range memory, so decoders can
/// run a whole parse and check failed() once per structural boundary.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_BINARYSTREAM_H
#define DARM_SUPPORT_BINARYSTREAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace darm {

/// Appends little-endian/varint-encoded fields to a byte buffer.
class ByteWriter {
public:
  void writeU8(uint8_t V) { Bytes.push_back(V); }
  void writeU16(uint16_t V) {
    writeU8(static_cast<uint8_t>(V));
    writeU8(static_cast<uint8_t>(V >> 8));
  }
  void writeU32(uint32_t V) {
    writeU16(static_cast<uint16_t>(V));
    writeU16(static_cast<uint16_t>(V >> 16));
  }
  void writeU64(uint64_t V) {
    writeU32(static_cast<uint32_t>(V));
    writeU32(static_cast<uint32_t>(V >> 32));
  }
  /// LEB128 varint.
  void writeVar(uint64_t V) {
    while (V >= 0x80) {
      writeU8(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    writeU8(static_cast<uint8_t>(V));
  }
  /// Zigzag + varint.
  void writeSVar(int64_t V) {
    writeVar((static_cast<uint64_t>(V) << 1) ^
             static_cast<uint64_t>(V >> 63));
  }
  /// Varint length + raw bytes.
  void writeStr(const std::string &S) {
    writeVar(S.size());
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }

  std::vector<uint8_t> take() { return std::move(Bytes); }
  size_t size() const { return Bytes.size(); }

private:
  std::vector<uint8_t> Bytes;
};

/// Reads the ByteWriter encoding back. Never reads out of range: a short
/// buffer poisons the reader (failed() becomes true) and every later
/// read returns zero values.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  uint8_t readU8() {
    if (Pos >= Size) {
      Fail = true;
      return 0;
    }
    return Data[Pos++];
  }
  uint16_t readU16() {
    uint16_t Lo = readU8(), Hi = readU8();
    return static_cast<uint16_t>(Lo | (Hi << 8));
  }
  uint32_t readU32() {
    uint32_t Lo = readU16(), Hi = readU16();
    return Lo | (Hi << 16);
  }
  uint64_t readU64() {
    uint64_t Lo = readU32(), Hi = readU32();
    return Lo | (Hi << 32);
  }
  uint64_t readVar() {
    uint64_t V = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      uint8_t B = readU8();
      V |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return V;
    }
    Fail = true; // > 10-byte varint: malformed
    return 0;
  }
  int64_t readSVar() {
    uint64_t V = readVar();
    return static_cast<int64_t>((V >> 1) ^ (~(V & 1) + 1));
  }
  std::string readStr() {
    uint64_t N = readVar();
    if (N > Size - Pos || Fail) { // Pos <= Size always holds
      Fail = true;
      return std::string();
    }
    std::string S(reinterpret_cast<const char *>(Data + Pos),
                  static_cast<size_t>(N));
    Pos += static_cast<size_t>(N);
    return S;
  }

  bool failed() const { return Fail; }
  bool atEnd() const { return Pos == Size && !Fail; }
  size_t position() const { return Pos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Fail = false;
};

} // namespace darm

#endif // DARM_SUPPORT_BINARYSTREAM_H
