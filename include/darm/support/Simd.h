//===- Simd.h - Lane-vector helpers for dense warp loops -----------*- C++ -*-===//
///
/// \file
/// Explicit SIMD over the simulator's register rows (docs/performance.md,
/// "SIMD lane loops"). A register row is WarpSize consecutive uint64
/// lanes; every helper here processes N lanes of one operation — main
/// loop in kWidth-lane vector chunks, remainder in a scalar tail — and is
/// REQUIRED to produce bit-identical results to the scalar expression it
/// replaces (the sim goldens pin this through the executor):
///
///   * integer ops are performed on the full 64-bit lane payload in
///     unsigned arithmetic (two's-complement wrap, no UB), with the i32
///     write normalization (sign-extend low 32) applied exactly where the
///     scalar executor applies it;
///   * float ops reinterpret the low 32 bits as IEEE f32, apply exactly
///     one arithmetic operation (no contraction/FMA is possible in a
///     single-op helper), and zero-extend the result bits — identical to
///     the scalar `asFloat`/`fromFloat` round trip on every input
///     including NaN payloads;
///   * comparisons yield canonical i1 lanes (0/1), with the same
///     raw-64-bit signed / masked-unsigned operand conventions as the
///     executor's scalar switch.
///
/// On GCC/Clang the vector body uses the portable vector-extension types
/// (`__attribute__((vector_size))`); the chunk width is 4 u64 lanes
/// (8 when compiled for AVX-512). Elsewhere — or with DARM_SIMD_SCALAR
/// defined, which the scalar-fallback unit test forces — every helper is
/// a plain branch-free lane loop the autovectorizer can handle. Both
/// variants share the scalar per-lane expressions, so the fallback is not
/// a second implementation of the semantics.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_SIMD_H
#define DARM_SUPPORT_SIMD_H

#include <bit>
#include <cstdint>
#include <cstring>

namespace darm {
namespace simd {

/// One executor operand: a register row (lane-indexed) or a broadcast
/// immediate when Ptr is null.
struct In {
  const uint64_t *Ptr;
  uint64_t Imm;
  uint64_t at(unsigned L) const { return Ptr ? Ptr[L] : Imm; }
};

/// Destination-write canonicalization, mirroring the executor's NormKind
/// (same member order; the simulator casts between the two).
enum class Norm : uint8_t { None, I1, I32, F32 };

// Scalar building blocks (shared by the vector tail and the fallback).
inline uint64_t sext32(uint64_t V) {
  return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(V)));
}
inline float asFloatS(uint64_t Bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(Bits));
}
inline uint64_t fromFloatS(float F) {
  return static_cast<uint64_t>(std::bit_cast<uint32_t>(F));
}
inline uint64_t snorm(Norm K, uint64_t Raw) {
  switch (K) {
  case Norm::I1:
    return Raw & 1;
  case Norm::I32:
    return sext32(Raw);
  case Norm::F32:
    return Raw & 0xffffffffull;
  case Norm::None:
    break;
  }
  return Raw;
}

#if (defined(__GNUC__) || defined(__clang__)) && !defined(DARM_SIMD_SCALAR)
#define DARM_SIMD_VECTOR 1

// Without -mavx GCC notes that passing a 256-bit vector by value would
// change the ABI (-Wpsabi). Every helper here is inline, so no ABI
// boundary is ever crossed; the note also fires at the point of
// *inlining* in including TUs — after any pragma pop — so it must stay
// disabled for the whole TU, not just this header region. -Wpsabi
// carries no other diagnostics of interest.
#pragma GCC diagnostic ignored "-Wpsabi"

#if defined(__AVX512F__)
inline constexpr unsigned kWidth = 8;
#else
inline constexpr unsigned kWidth = 4;
#endif

typedef uint64_t VU64 __attribute__((vector_size(kWidth * 8)));
typedef int64_t VI64 __attribute__((vector_size(kWidth * 8)));
typedef uint32_t VU32 __attribute__((vector_size(kWidth * 4)));
typedef int32_t VI32 __attribute__((vector_size(kWidth * 4)));
typedef float VF32 __attribute__((vector_size(kWidth * 4)));

inline VU64 vload(const uint64_t *P) {
  VU64 V;
  std::memcpy(&V, P, sizeof(V));
  return V;
}
inline void vstore(uint64_t *P, VU64 V) { std::memcpy(P, &V, sizeof(V)); }
inline VU64 vsplat(uint64_t X) {
  VU64 V;
  for (unsigned I = 0; I < kWidth; ++I)
    V[I] = X;
  return V;
}
inline VU64 vin(In S, unsigned L) {
  return S.Ptr ? vload(S.Ptr + L) : vsplat(S.Imm);
}
inline VI64 vsigned(VU64 V) { return reinterpret_cast<VI64>(V); }
inline VU64 vbits(VI64 V) { return reinterpret_cast<VU64>(V); }
/// Sign-extend the low 32 bits of every lane (the i32 write norm).
inline VU64 vsext32(VU64 V) { return vbits(vsigned(V << 32) >> 32); }
inline VU64 vnorm(Norm K, VU64 V) {
  switch (K) {
  case Norm::I1:
    return V & 1;
  case Norm::I32:
    return vsext32(V);
  case Norm::F32:
    return V & 0xffffffffull;
  case Norm::None:
    break;
  }
  return V;
}
/// Low 32 bits of every lane as IEEE f32, and back (zero-extended).
inline VF32 vasF32(VU64 V) {
  return std::bit_cast<VF32>(__builtin_convertvector(V, VU32));
}
inline VU64 vfromF32(VF32 F) {
  return __builtin_convertvector(std::bit_cast<VU32>(F), VU64);
}

// Binary row op: VEXPR over VU64 chunks VA/VB, SEXPR over scalar lanes
// RA/RB (also the tail). Expressions must be comma-free.
#define DARM_SIMD_BINOP(NAME, VEXPR, SEXPR)                                    \
  inline void NAME(uint64_t *D, In A, In B, unsigned N) {                      \
    unsigned L = 0;                                                            \
    for (; L + kWidth <= N; L += kWidth) {                                     \
      const VU64 VA = vin(A, L);                                               \
      const VU64 VB = vin(B, L);                                               \
      vstore(D + L, (VEXPR));                                                  \
    }                                                                          \
    for (; L < N; ++L) {                                                       \
      const uint64_t RA = A.at(L);                                             \
      const uint64_t RB = B.at(L);                                             \
      D[L] = (SEXPR);                                                          \
    }                                                                          \
  }

#define DARM_SIMD_CMP(NAME, VEXPR, SEXPR)                                      \
  inline void NAME(uint64_t *D, In A, In B, unsigned N) {                      \
    unsigned L = 0;                                                            \
    for (; L + kWidth <= N; L += kWidth) {                                     \
      const VU64 VA = vin(A, L);                                               \
      const VU64 VB = vin(B, L);                                               \
      vstore(D + L, vbits(VEXPR) & 1);                                         \
    }                                                                          \
    for (; L < N; ++L) {                                                       \
      const uint64_t RA = A.at(L);                                             \
      const uint64_t RB = B.at(L);                                             \
      D[L] = (SEXPR) ? 1 : 0;                                                  \
    }                                                                          \
  }

#define DARM_SIMD_UCMP(NAME, OP)                                               \
  inline void NAME(uint64_t *D, In A, In B, unsigned N, bool Is32) {           \
    const uint64_t M = Is32 ? 0xffffffffull : ~0ull;                           \
    unsigned L = 0;                                                            \
    for (; L + kWidth <= N; L += kWidth) {                                     \
      const VU64 VA = vin(A, L) & M;                                           \
      const VU64 VB = vin(B, L) & M;                                           \
      vstore(D + L, vbits(VA OP VB) & 1);                                      \
    }                                                                          \
    for (; L < N; ++L)                                                         \
      D[L] = ((A.at(L) & M) OP (B.at(L) & M)) ? 1 : 0;                         \
  }

#define DARM_SIMD_FCMP(NAME, OP)                                               \
  inline void NAME(uint64_t *D, In A, In B, unsigned N) {                      \
    unsigned L = 0;                                                            \
    for (; L + kWidth <= N; L += kWidth) {                                     \
      const VF32 FA = vasF32(vin(A, L));                                       \
      const VF32 FB = vasF32(vin(B, L));                                       \
      vstore(D + L, __builtin_convertvector(FA OP FB, VU64) & 1);              \
    }                                                                          \
    for (; L < N; ++L)                                                         \
      D[L] = (asFloatS(A.at(L)) OP asFloatS(B.at(L))) ? 1 : 0;                 \
  }

#else // scalar fallback

inline constexpr unsigned kWidth = 1;

#define DARM_SIMD_BINOP(NAME, VEXPR, SEXPR)                                    \
  inline void NAME(uint64_t *D, In A, In B, unsigned N) {                      \
    for (unsigned L = 0; L < N; ++L) {                                         \
      const uint64_t RA = A.at(L);                                             \
      const uint64_t RB = B.at(L);                                             \
      D[L] = (SEXPR);                                                          \
    }                                                                          \
  }

#define DARM_SIMD_CMP(NAME, VEXPR, SEXPR)                                      \
  inline void NAME(uint64_t *D, In A, In B, unsigned N) {                      \
    for (unsigned L = 0; L < N; ++L) {                                         \
      const uint64_t RA = A.at(L);                                             \
      const uint64_t RB = B.at(L);                                             \
      D[L] = (SEXPR) ? 1 : 0;                                                  \
    }                                                                          \
  }

#define DARM_SIMD_UCMP(NAME, OP)                                               \
  inline void NAME(uint64_t *D, In A, In B, unsigned N, bool Is32) {           \
    const uint64_t M = Is32 ? 0xffffffffull : ~0ull;                           \
    for (unsigned L = 0; L < N; ++L)                                           \
      D[L] = ((A.at(L) & M) OP (B.at(L) & M)) ? 1 : 0;                         \
  }

#define DARM_SIMD_FCMP(NAME, OP)                                               \
  inline void NAME(uint64_t *D, In A, In B, unsigned N) {                      \
    for (unsigned L = 0; L < N; ++L)                                           \
      D[L] = (asFloatS(A.at(L)) OP asFloatS(B.at(L))) ? 1 : 0;                 \
  }

#endif

// 64-bit integer ops (write norm None).
DARM_SIMD_BINOP(addI64, VA + VB, RA + RB)
DARM_SIMD_BINOP(subI64, VA - VB, RA - RB)
DARM_SIMD_BINOP(mulI64, VA * VB, RA * RB)
DARM_SIMD_BINOP(andI64, VA & VB, RA & RB)
DARM_SIMD_BINOP(orI64, VA | VB, RA | RB)
DARM_SIMD_BINOP(xorI64, VA ^ VB, RA ^ RB)
DARM_SIMD_BINOP(shlI64, VA << (VB & 63), RA << (RB & 63))
DARM_SIMD_BINOP(lshrI64, VA >> (VB & 63), RA >> (RB & 63))
DARM_SIMD_BINOP(ashrI64, vbits(vsigned(VA) >> vsigned(VB & 63)),
                static_cast<uint64_t>(static_cast<int64_t>(RA) >> (RB & 63)))

// 32-bit integer ops: the op in 64-bit lanes, then the exact i32 write
// norm (sign-extend low 32) the scalar executor applies.
DARM_SIMD_BINOP(addI32, vsext32(VA + VB), sext32(RA + RB))
DARM_SIMD_BINOP(subI32, vsext32(VA - VB), sext32(RA - RB))
DARM_SIMD_BINOP(mulI32, vsext32(VA * VB), sext32(RA * RB))
DARM_SIMD_BINOP(andI32, vsext32(VA & VB), sext32(RA & RB))
DARM_SIMD_BINOP(orI32, vsext32(VA | VB), sext32(RA | RB))
DARM_SIMD_BINOP(xorI32, vsext32(VA ^ VB), sext32(RA ^ RB))
DARM_SIMD_BINOP(shlI32, vsext32(VA << (VB & 31)), sext32(RA << (RB & 31)))
DARM_SIMD_BINOP(lshrI32, vsext32((VA & 0xffffffffull) >> (VB & 31)),
                sext32(static_cast<uint32_t>(RA) >> (RB & 31)))
DARM_SIMD_BINOP(ashrI32, vsext32(vbits(vsigned(vsext32(VA)) >> vsigned(VB & 31))),
                sext32(static_cast<uint64_t>(
                    static_cast<int64_t>(static_cast<int32_t>(RA)) >>
                    (RB & 31))))

// f32 ops: one IEEE operation on the low 32 bits, zero-extended result.
DARM_SIMD_BINOP(fAdd, vfromF32(vasF32(VA) + vasF32(VB)),
                fromFloatS(asFloatS(RA) + asFloatS(RB)))
DARM_SIMD_BINOP(fSub, vfromF32(vasF32(VA) - vasF32(VB)),
                fromFloatS(asFloatS(RA) - asFloatS(RB)))
DARM_SIMD_BINOP(fMul, vfromF32(vasF32(VA) * vasF32(VB)),
                fromFloatS(asFloatS(RA) * asFloatS(RB)))
DARM_SIMD_BINOP(fDiv, vfromF32(vasF32(VA) / vasF32(VB)),
                fromFloatS(asFloatS(RA) / asFloatS(RB)))

// Comparisons: canonical 0/1 lanes. Vector comparisons yield -1/0 masks;
// the &1 canonicalizes. Signed/equality compare the raw 64-bit payloads
// (i32 registers store sign-extended, matching the scalar executor).
DARM_SIMD_CMP(cmpEq, VA == VB, RA == RB)
DARM_SIMD_CMP(cmpNe, VA != VB, RA != RB)
DARM_SIMD_CMP(cmpSlt, vsigned(VA) < vsigned(VB),
              static_cast<int64_t>(RA) < static_cast<int64_t>(RB))
DARM_SIMD_CMP(cmpSle, vsigned(VA) <= vsigned(VB),
              static_cast<int64_t>(RA) <= static_cast<int64_t>(RB))
DARM_SIMD_CMP(cmpSgt, vsigned(VA) > vsigned(VB),
              static_cast<int64_t>(RA) > static_cast<int64_t>(RB))
DARM_SIMD_CMP(cmpSge, vsigned(VA) >= vsigned(VB),
              static_cast<int64_t>(RA) >= static_cast<int64_t>(RB))

// Unsigned comparisons take the executor's i32 operand convention as a
// mask: 32-bit compares zero-extend the low 32 bits first.
DARM_SIMD_UCMP(cmpUlt, <)
DARM_SIMD_UCMP(cmpUle, <=)
DARM_SIMD_UCMP(cmpUgt, >)
DARM_SIMD_UCMP(cmpUge, >=)

// f32 comparisons (IEEE semantics; NaN compares exactly as the scalar
// operator does — e.g. cmpFone is the executor's `!=`, true on NaN).
DARM_SIMD_FCMP(cmpFoeq, ==)
DARM_SIMD_FCMP(cmpFone, !=)
DARM_SIMD_FCMP(cmpFolt, <)
DARM_SIMD_FCMP(cmpFole, <=)
DARM_SIMD_FCMP(cmpFogt, >)
DARM_SIMD_FCMP(cmpFoge, >=)

// Integer division family: total per the IR contract (Instruction.h) —
// division by zero yields 0 and INT_MIN/-1 negates — so the lane loop
// never traps and masked execution may feed it any bit pattern. Hardware
// integer division does not vectorize profitably, so these stay scalar
// lane loops; they take the decoded write norm directly because one
// token covers both widths.
inline void sdiv(uint64_t *D, In A, In B, unsigned N, Norm K) {
  for (unsigned L = 0; L < N; ++L) {
    const int64_t SA = static_cast<int64_t>(A.at(L));
    const int64_t SB = static_cast<int64_t>(B.at(L));
    uint64_t R;
    if (SB == 0)
      R = 0;
    else if (SB == -1)
      R = uint64_t{0} - static_cast<uint64_t>(SA);
    else
      R = static_cast<uint64_t>(SA / SB);
    D[L] = snorm(K, R);
  }
}
inline void srem(uint64_t *D, In A, In B, unsigned N, Norm K) {
  for (unsigned L = 0; L < N; ++L) {
    const int64_t SA = static_cast<int64_t>(A.at(L));
    const int64_t SB = static_cast<int64_t>(B.at(L));
    D[L] = snorm(K, (SB == 0 || SB == -1)
                        ? uint64_t{0}
                        : static_cast<uint64_t>(SA % SB));
  }
}
inline void udiv(uint64_t *D, In A, In B, unsigned N, bool Is32, Norm K) {
  const uint64_t M = Is32 ? 0xffffffffull : ~0ull;
  for (unsigned L = 0; L < N; ++L) {
    const uint64_t UA = A.at(L) & M, UB = B.at(L) & M;
    D[L] = snorm(K, UB == 0 ? 0 : UA / UB);
  }
}
inline void urem(uint64_t *D, In A, In B, unsigned N, bool Is32, Norm K) {
  const uint64_t M = Is32 ? 0xffffffffull : ~0ull;
  for (unsigned L = 0; L < N; ++L) {
    const uint64_t UA = A.at(L) & M, UB = B.at(L) & M;
    D[L] = snorm(K, UB == 0 ? 0 : UA % UB);
  }
}

/// D[L] = norm((C[L] & 1) ? T[L] : F[L]) — the executor's select.
inline void select(uint64_t *D, In C, In T, In F, unsigned N, Norm K) {
  unsigned L = 0;
#if defined(DARM_SIMD_VECTOR)
  for (; L + kWidth <= N; L += kWidth) {
    // -1/0 mask from the low condition bit, then a blend.
    const VU64 M = vbits((vin(C, L) & 1) != 0);
    const VU64 R = (vin(T, L) & M) | (vin(F, L) & ~M);
    vstore(D + L, vnorm(K, R));
  }
#endif
  for (; L < N; ++L)
    D[L] = snorm(K, (C.at(L) & 1) ? T.at(L) : F.at(L));
}

/// D[L] = norm(A[L]) — normalized register move (phi copies in traces).
inline void move(uint64_t *D, In A, unsigned N, Norm K) {
  unsigned L = 0;
#if defined(DARM_SIMD_VECTOR)
  for (; L + kWidth <= N; L += kWidth)
    vstore(D + L, vnorm(K, vin(A, L)));
#endif
  for (; L < N; ++L)
    D[L] = snorm(K, A.at(L));
}

/// D[L] = Base[L] + Index[L] * Elem — pointer arithmetic (gep). Two's
/// complement: unsigned wrap is bit-identical to the scalar signed mul.
inline void gep(uint64_t *D, In Base, In Index, uint64_t Elem, unsigned N) {
  unsigned L = 0;
#if defined(DARM_SIMD_VECTOR)
  for (; L + kWidth <= N; L += kWidth)
    vstore(D + L, vin(Base, L) + vin(Index, L) * Elem);
#endif
  for (; L < N; ++L)
    D[L] = Base.at(L) + Index.at(L) * Elem;
}

/// Packs the low bit of each lane into a bitmask: bit L of the result is
/// Row[L] & 1, for L in [0, N). N caps at 64 (one lane mask). The
/// executor's divergent-branch scan uses it to split the active mask
/// without a serial per-lane loop: per chunk, shift each lane's low bit
/// to its lane position and OR-accumulate.
inline uint64_t boolMask(const uint64_t *Row, unsigned N) {
  uint64_t M = 0;
  unsigned L = 0;
#if defined(DARM_SIMD_VECTOR)
  VU64 Iota;
  for (unsigned I = 0; I < kWidth; ++I)
    Iota[I] = I;
  VU64 Acc = vsplat(0);
  for (; L + kWidth <= N; L += kWidth)
    Acc |= (vload(Row + L) & 1) << (Iota + L);
  for (unsigned I = 0; I < kWidth; ++I)
    M |= Acc[I];
#endif
  for (; L < N; ++L)
    M |= (Row[L] & 1) << L;
  return M;
}

#undef DARM_SIMD_FCMP
#undef DARM_SIMD_UCMP
#undef DARM_SIMD_CMP
#undef DARM_SIMD_BINOP

} // namespace simd
} // namespace darm

#endif // DARM_SUPPORT_SIMD_H
