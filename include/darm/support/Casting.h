//===- Casting.h - LLVM-style isa/cast/dyn_cast ----------------*- C++ -*-===//
///
/// \file
/// Minimal reimplementation of LLVM's opt-in RTTI templates. A class opts in
/// by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_CASTING_H
#define DARM_SUPPORT_CASTING_H

#include <cassert>

namespace darm {

/// Returns true if \p V points to an instance of \p To.
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> used on a null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts that \p V really is a \p To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

/// Checking downcast; returns null if \p V is not a \p To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument.
template <typename To, typename From> To *dyn_cast_or_null(From *V) {
  return V ? dyn_cast<To>(V) : nullptr;
}

} // namespace darm

#endif // DARM_SUPPORT_CASTING_H
