//===- Parallel.h - Work-scheduling thread pool --------------------*- C++ -*-===//
///
/// \file
/// The work-scheduling subsystem behind every sweep driver (darm_fuzz,
/// darm_check, the throughput benches — docs/performance.md): a fixed
/// pool of worker threads plus a deterministic, ordered `parallelMap`.
///
/// Design rules the whole repo relies on:
///
///   * **Ordered results.** parallelMap(Pool, N, F) returns exactly
///     `{F(0), F(1), ..., F(N-1)}`; scheduling order never leaks into the
///     result. Sweep output (fuzz findings, claims aggregates, golden
///     diffs) is byte-identical at any --jobs value.
///   * **Per-worker Context ownership.** Work items that build IR must
///     construct their *own* Context (and Module) inside the callback,
///     exactly like the sequential code paths already do. A Context
///     interns types and constants behind non-atomic maps; two items
///     sharing one would race. Nothing in this pool shares IR state
///     between items, and no callback may capture a Context another item
///     writes to.
///   * **Jobs = 1 runs inline.** A pool constructed with one job spawns
///     no threads at all; forIndices degenerates to a plain loop on the
///     calling thread, reproducing single-threaded behaviour exactly
///     (same order, same thread, same exception flow).
///   * **Deterministic exception propagation.** If callbacks throw, the
///     batch skips items above the lowest failing index recorded so far,
///     keeps running every item below it (any of which may lower the
///     record), and rethrows the exception of the *lowest-indexed*
///     throwing item on the calling thread — the same exception a
///     sequential loop would have surfaced first, independent of
///     scheduling.
///
/// The calling thread participates in every batch, so ThreadPool(N) uses
/// N CPUs with N-1 worker threads. Items are claimed in guided chunks —
/// half the remaining range split across participants, shrinking to
/// single items at the tail — held in per-participant range slots; an
/// idle participant steals the upper half of another's slot, so one
/// expensive item cannot strand the rest of its chunk behind it
/// (Parallel.cpp has the scheduling details).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_PARALLEL_H
#define DARM_SUPPORT_PARALLEL_H

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace darm {

/// Default --jobs value: the hardware thread count, at least 1.
unsigned hardwareParallelism();

/// Fixed-size thread pool. Construct once, run any number of batches;
/// workers persist across batches (no spawn cost per sweep chunk).
/// Batches must not be nested: forIndices must not be called from inside
/// a work item.
class ThreadPool {
public:
  /// \p Jobs is the total parallelism, including the calling thread;
  /// Jobs == 1 spawns no workers and runs everything inline.
  explicit ThreadPool(unsigned Jobs = hardwareParallelism());
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Configured parallelism (>= 1).
  unsigned jobs() const { return NumJobs; }

  /// Runs Fn(I) for every I in [0, N), distributed over the workers and
  /// the calling thread. Returns once every claimed item has finished.
  /// Rethrows the lowest-indexed item's exception, if any (items after a
  /// failure may be skipped).
  void forIndices(size_t N, const std::function<void(size_t)> &Fn);

private:
  struct Impl;
  unsigned NumJobs;
  std::unique_ptr<Impl> I; ///< null when NumJobs == 1
};

/// Ordered parallel map: Out[I] = F(I) for I in [0, N). \p R must be
/// default-constructible and move-assignable. Deterministic: the result
/// never depends on the pool size or scheduling.
template <typename R, typename Fn>
std::vector<R> parallelMap(ThreadPool &Pool, size_t N, Fn &&F) {
  std::vector<R> Out(N);
  Pool.forIndices(N, [&](size_t I) { Out[I] = F(I); });
  return Out;
}

} // namespace darm

#endif // DARM_SUPPORT_PARALLEL_H
