//===- ErrorHandling.h - Fatal error reporting ------------------*- C++ -*-===//
///
/// \file
/// Fatal-error and unreachable-code helpers modeled on LLVM's
/// ErrorHandling.h. Library code never throws; invariant violations abort
/// with a diagnostic.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_ERRORHANDLING_H
#define DARM_SUPPORT_ERRORHANDLING_H

namespace darm {

/// Prints \p Msg with source location to stderr and aborts.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

/// Prints a fatal usage/environment error and exits. For tool code.
[[noreturn]] void reportFatalError(const char *Msg);

/// A hook invoked by reportFatalError instead of printing + exiting. The
/// handler must not return normally — it may throw (reportFatalError is
/// [[noreturn]]). Returns the previously installed handler (null for the
/// default exit behaviour). The differential fuzzing harness uses this to
/// turn simulator aborts (out-of-bounds store, runaway loop) into oracle
/// findings instead of process death.
///
/// Handler storage is **per thread**: installation and dispatch touch
/// only the calling thread's slot, so concurrent simulations in the
/// sweep pool (support/Parallel.h) can each trap their own aborts
/// without racing or cross-talking — a fatal error on worker A can never
/// be swallowed by (or leak into) worker B's oracle run. A thread that
/// never installed a handler gets the default print-and-exit behaviour.
using FatalErrorHandler = void (*)(const char *Msg);
FatalErrorHandler setFatalErrorHandler(FatalErrorHandler H);

/// RAII installation of a fatal-error handler on the current thread for
/// one scope — the shape every in-process consumer should use, so the
/// handler is restored even when the protected region unwinds through an
/// unrelated exception.
class ScopedFatalErrorHandler {
public:
  explicit ScopedFatalErrorHandler(FatalErrorHandler H)
      : Prev(setFatalErrorHandler(H)) {}
  ~ScopedFatalErrorHandler() { setFatalErrorHandler(Prev); }

  ScopedFatalErrorHandler(const ScopedFatalErrorHandler &) = delete;
  ScopedFatalErrorHandler &operator=(const ScopedFatalErrorHandler &) = delete;

private:
  FatalErrorHandler Prev;
};

} // namespace darm

/// Marks a point in code that must never execute if program invariants hold.
#define darm_unreachable(MSG) ::darm::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // DARM_SUPPORT_ERRORHANDLING_H
