//===- ErrorHandling.h - Fatal error reporting ------------------*- C++ -*-===//
///
/// \file
/// Fatal-error and unreachable-code helpers modeled on LLVM's
/// ErrorHandling.h. Library code never throws; invariant violations abort
/// with a diagnostic.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_ERRORHANDLING_H
#define DARM_SUPPORT_ERRORHANDLING_H

namespace darm {

/// Prints \p Msg with source location to stderr and aborts.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

/// Prints a fatal usage/environment error and exits. For tool code.
[[noreturn]] void reportFatalError(const char *Msg);

} // namespace darm

/// Marks a point in code that must never execute if program invariants hold.
#define darm_unreachable(MSG) ::darm::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // DARM_SUPPORT_ERRORHANDLING_H
