//===- ErrorHandling.h - Fatal error reporting ------------------*- C++ -*-===//
///
/// \file
/// Fatal-error and unreachable-code helpers modeled on LLVM's
/// ErrorHandling.h. Library code never throws; invariant violations abort
/// with a diagnostic.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_ERRORHANDLING_H
#define DARM_SUPPORT_ERRORHANDLING_H

namespace darm {

/// Prints \p Msg with source location to stderr and aborts.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

/// Prints a fatal usage/environment error and exits. For tool code.
[[noreturn]] void reportFatalError(const char *Msg);

/// A hook invoked by reportFatalError instead of printing + exiting. The
/// handler must not return normally — it may throw (reportFatalError is
/// [[noreturn]]). Returns the previously installed handler (null for the
/// default exit behaviour). The differential fuzzing harness uses this to
/// turn simulator aborts (out-of-bounds store, runaway loop) into oracle
/// findings instead of process death.
using FatalErrorHandler = void (*)(const char *Msg);
FatalErrorHandler setFatalErrorHandler(FatalErrorHandler H);

} // namespace darm

/// Marks a point in code that must never execute if program invariants hold.
#define darm_unreachable(MSG) ::darm::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // DARM_SUPPORT_ERRORHANDLING_H
