//===- Hashing.h - Stable content hashing ------------------------*- C++ -*-===//
///
/// \file
/// A stable, platform-independent byte hasher for content-addressed
/// compile caching (docs/caching.md). The algorithm is FNV-1a/64: tiny,
/// dependency-free, and — unlike std::hash — specified here, so a hash
/// recorded by one build (or, later, one darmd process) matches any
/// other. Streaming via StableHasher and one-shot via hashBytes produce
/// identical results for identical byte sequences.
///
/// `hashModule` / `hashFunction` hash the *canonical textual IR* (the
/// IRPrinter form, whose byte-determinism across Contexts and
/// value-numbering orders is pinned by tests/serialize_test.cpp), so two
/// structurally identical kernels built in different Contexts hash
/// equal. They are declared here with the raw hasher they compose, but
/// implemented in the darm_ir layer (src/ir/Serialize.cpp) — callers
/// need darm_ir anyway to have a Module to hash. The compile cache's
/// key itself hashes the cheaper canonical *binary* snapshot instead
/// (artifactIRHash in core/CompiledModule.h), keeping these text hashes
/// as the fallback for IR the serializer refuses.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_HASHING_H
#define DARM_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace darm {

class Module;
class Function;

/// Incremental FNV-1a/64. Byte-order independent by construction (it
/// consumes bytes, never host words).
class StableHasher {
public:
  static constexpr uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  void update(const void *Data, size_t Size) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Size; ++I) {
      H ^= P[I];
      H *= kPrime;
    }
  }
  void update(const std::string &S) { update(S.data(), S.size()); }
  /// Hashes an integer as its 8-byte little-endian image, so the result
  /// does not depend on host endianness or integer width promotions.
  void updateU64(uint64_t V) {
    unsigned char B[8];
    for (int I = 0; I < 8; ++I)
      B[I] = static_cast<unsigned char>(V >> (8 * I));
    update(B, 8);
  }

  uint64_t finish() const { return H; }

private:
  uint64_t H = kOffsetBasis;
};

/// One-shot FNV-1a/64 over a byte range.
inline uint64_t hashBytes(const void *Data, size_t Size) {
  StableHasher Hash;
  Hash.update(Data, Size);
  return Hash.finish();
}
inline uint64_t hashBytes(const std::string &S) {
  return hashBytes(S.data(), S.size());
}

/// Content hash of a module / function: FNV-1a/64 of its canonical
/// printed form. Stable across Contexts, processes and platforms; the
/// cache key half that identifies *what* is being compiled
/// (docs/caching.md). Implemented in src/ir/Serialize.cpp (darm_ir).
uint64_t hashModule(const Module &M);
uint64_t hashFunction(const Function &F);

} // namespace darm

#endif // DARM_SUPPORT_HASHING_H
