//===- Shards.h - Sweep-driver parsing and sharding helpers --------*- C++ -*-===//
///
/// \file
/// Small helpers shared by the darm_fuzz and darm_check drivers: shard
/// specs (`--shards N:i` partitions a corpus disjointly across N
/// processes by `index % N == i`), seed ranges (`LO:HI`), and
/// comma-separated lists. Lives in support so the fuzz driver does not
/// need the check layer (and its benchmark corpus) for a string parser
/// — and so the two drivers cannot drift in how they validate the same
/// flags.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SUPPORT_SHARDS_H
#define DARM_SUPPORT_SHARDS_H

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

namespace darm {

/// Shard selection: item \p Index belongs to shard \p ShardIdx of
/// \p Shards iff Index % Shards == ShardIdx.
inline bool inShard(uint64_t Index, unsigned Shards, unsigned ShardIdx) {
  return Shards <= 1 || Index % Shards == ShardIdx;
}

namespace shards_detail {
/// strtoul-family helpers accept "-1" (wrapping) and "+1"; both
/// components of every spec here are plain unsigned digits, so anything
/// else — including a sign — is malformed.
inline bool startsWithDigit(const char *S) { return *S >= '0' && *S <= '9'; }
} // namespace shards_detail

/// Parses a "N:i" shard spec (N >= 1, 0 <= i < N). Returns false on
/// malformed input.
inline bool parseShardSpec(const char *Spec, unsigned &Shards,
                           unsigned &ShardIdx) {
  const char *Colon = std::strchr(Spec, ':');
  if (!Colon || Colon == Spec || *(Colon + 1) == '\0')
    return false;
  if (!shards_detail::startsWithDigit(Spec) ||
      !shards_detail::startsWithDigit(Colon + 1))
    return false;
  char *End = nullptr;
  unsigned long N = std::strtoul(Spec, &End, 10);
  if (End != Colon || N == 0)
    return false;
  unsigned long I = std::strtoul(Colon + 1, &End, 10);
  if (*End != '\0' || I >= N)
    return false;
  Shards = static_cast<unsigned>(N);
  ShardIdx = static_cast<unsigned>(I);
  return true;
}

/// Parses a half-open "LO:HI" seed range with HI > LO. Returns false on
/// malformed input or an empty/inverted range — a typo must not turn a
/// sweep into a vacuous pass, and "0:-1" must not wrap into a 2^64-seed
/// sweep.
inline bool parseSeedRange(const char *Spec, uint64_t &Lo, uint64_t &Hi) {
  const char *Colon = std::strchr(Spec, ':');
  if (!Colon || Colon == Spec || *(Colon + 1) == '\0')
    return false;
  if (!shards_detail::startsWithDigit(Spec) ||
      !shards_detail::startsWithDigit(Colon + 1))
    return false;
  char *End = nullptr;
  Lo = std::strtoull(Spec, &End, 10);
  if (End != Colon)
    return false;
  Hi = std::strtoull(Colon + 1, &End, 10);
  if (*End != '\0')
    return false;
  return Hi > Lo;
}

/// Parses a `--jobs N` value: a positive integer with no sign and no
/// trailing garbage, capped at a sane thread count (also rejecting
/// strtoul's silent ULONG_MAX saturation on overflow). Shared by every
/// sweep driver and bench so "--jobs 8x" cannot silently mean 8 in one
/// tool and error in another.
inline bool parseJobs(const char *Spec, unsigned &Jobs) {
  if (!shards_detail::startsWithDigit(Spec))
    return false;
  char *End = nullptr;
  unsigned long N = std::strtoul(Spec, &End, 10);
  if (*End != '\0' || N == 0 || N > 65536)
    return false;
  Jobs = static_cast<unsigned>(N);
  return true;
}

/// Splits a comma-separated list, dropping empty items.
inline std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream In(S);
  std::string Item;
  while (std::getline(In, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

} // namespace darm

#endif // DARM_SUPPORT_SHARDS_H
