//===- Protocol.h - darmd wire protocol --------------------------*- C++ -*-===//
///
/// \file
/// The length-prefixed compile protocol darmd speaks (docs/caching.md):
/// a client frames a textual-IR compile request, the daemon answers with
/// the serialized CompiledModule artifact — byte-identical to what an
/// in-process compileToArtifact call would have produced — plus where
/// the answer came from (compiled / memory hit / disk hit).
///
/// Framing: every message is a 4-byte little-endian payload length
/// followed by that many payload bytes, over any byte stream (a pipe
/// pair in --stdio mode, a Unix socket otherwise). Lengths above
/// kMaxFrameBytes are rejected before allocation, so a garbage prefix
/// cannot OOM either side.
///
/// Request payload ("DRMQ" v1): magic, u16 version, u8 flags (bit 0 =
/// include a DecodedProgram image), the DARMConfig encoded field by
/// field under an explicit field count (kDARMConfigFieldCount — the same
/// schema tripwire as configFingerprint; decoders reject a count
/// mismatch instead of misreading a grown struct), and the kernel as
/// textual IR. Doubles travel as raw IEEE-754 bits, so a config
/// round-trips bit-exactly.
///
/// Response payload ("DRMR" v2): magic, u16 version, u8 status (0 = ok,
/// 1 = request-level error with a message, 2 = busy/load-shed: the
/// server is at its connection cap — retryable, carries no artifact),
/// u8 origin, and the "DRMA" artifact image (core/CompiledModule.h
/// serializeCompiledModule). Compile *failures* are not protocol errors:
/// a verifier-rejected compile comes back status-ok with the artifact's
/// CompileError set, exactly like the in-process path. Version policy as
/// everywhere (docs/caching.md): bump on any change, readers reject
/// mismatches (v2 added the busy status).
///
/// Deadlines: the framing helpers take optional idle/frame timeouts
/// (docs/serving.md). The idle timeout bounds the wait for a frame's
/// FIRST byte; the frame timeout bounds the rest of the frame once it
/// has started — so a server can let clients hold idle connections
/// forever while still disconnecting a slow-loris peer that dribbles a
/// frame byte by byte. Timeouts surface as failure with *TimedOut set.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SERVE_PROTOCOL_H
#define DARM_SERVE_PROTOCOL_H

#include "darm/core/CompiledModule.h"

#include <cstdint>
#include <string>
#include <vector>

namespace darm {
namespace serve {

/// Wire protocol version, shared by request and response payloads.
/// v2: response status 2 = busy (load shedding).
inline constexpr uint16_t kServeProtocolVersion = 2;

/// Frame payload cap. Large enough for any corpus kernel by orders of
/// magnitude; small enough that a corrupt length prefix cannot make
/// either side allocate the claimed bytes.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// One compile request: a kernel as textual IR plus the configuration to
/// meld it under. The daemon keys its cache exactly like the in-process
/// service: (artifactIRHash of the parsed kernel, configFingerprint).
struct CompileRequest {
  DARMConfig Cfg;
  bool IncludeProgram = true;
  std::string IRText;
};

/// Where the daemon's answer came from (CompileService::CacheSource on
/// the wire). Clients use this to assert serving properties — the CI
/// serve-smoke replay requires zero Compiled responses on a warm-from-
/// disk restart.
enum class ServeOrigin : uint8_t {
  Compiled = 0,
  MemoryHit = 1,
  DiskHit = 2,
  Upgraded = 3,
};
const char *originName(ServeOrigin O);

/// One response. Ok=false with Busy=false is a request-level failure
/// (unparseable request or IR) with Error set and no artifact — a
/// PERMANENT error, clients must not retry it. Ok=false with Busy=true
/// is load shedding: the server is at its connection cap — TRANSIENT,
/// clients back off and retry. Compile failures are Ok=true artifacts
/// with Art.failed().
struct CompileResponse {
  bool Ok = false;
  bool Busy = false;
  std::string Error;
  ServeOrigin Origin = ServeOrigin::Compiled;
  CompiledModule Art;
};

std::vector<uint8_t> encodeRequest(const CompileRequest &Req);
/// False (with \p Err set) on bad magic/version, a config field-count
/// mismatch, or truncated/trailing bytes. Never aborts on garbage.
bool decodeRequest(const uint8_t *Data, size_t Size, CompileRequest &Req,
                   std::string *Err = nullptr);

std::vector<uint8_t> encodeResponse(const CompileResponse &Resp);
bool decodeResponse(const uint8_t *Data, size_t Size, CompileResponse &Resp,
                    std::string *Err = nullptr);

/// Writes one length-prefixed frame to \p Fd (retrying short writes and
/// EINTR). False on I/O error, an over-cap payload, or — with a
/// non-negative \p TimeoutMs — a whole-call deadline expiry (reported
/// via \p TimedOut). A peer that closed mid-write surfaces as a clean
/// EPIPE failure, never a process-killing SIGPIPE (MSG_NOSIGNAL).
bool writeFrame(int Fd, const std::vector<uint8_t> &Payload,
                int TimeoutMs = -1, bool *TimedOut = nullptr);

/// Reads one length-prefixed frame from \p Fd. False on EOF, I/O error,
/// an over-cap length, or a deadline expiry; \p CleanEof distinguishes
/// "peer closed between frames" (the normal end of a session) from a
/// torn frame. \p IdleTimeoutMs bounds the wait for the first byte;
/// \p FrameTimeoutMs bounds the remainder of the frame once it has
/// started (the slow-loris guard). Either may be -1 (no bound);
/// \p TimedOut reports which failures were deadline expiries.
bool readFrame(int Fd, std::vector<uint8_t> &Payload,
               bool *CleanEof = nullptr, int IdleTimeoutMs = -1,
               int FrameTimeoutMs = -1, bool *TimedOut = nullptr);

} // namespace serve
} // namespace darm

#endif // DARM_SERVE_PROTOCOL_H
