//===- ArtifactStore.h - On-disk artifact persistence ------------*- C++ -*-===//
///
/// \file
/// The on-disk tier of the compile cache (docs/caching.md): a directory
/// of write-once "DRMA" artifact files keyed by (IRHash, fingerprint),
/// plugged into a CompileService via setPersistence so warm starts
/// survive process restarts — the darmd daemon's restart story.
///
/// Layout: one file per key, `<irhash:016x>-<fnv64(fingerprint):016x>
/// .drma`, flat in the store directory. The fingerprint is hashed only
/// to form a filename; the full fingerprint (and IRHash) are stored
/// *inside* the artifact and checked on load, so a filename-hash
/// collision degrades to a miss, never a wrong artifact. Keys are
/// portable across builds and platforms by construction: IRHash is the
/// canonical-snapshot FNV-1a/64 and the fingerprint is the ABI-free
/// configFingerprint encoding.
///
/// Atomic-write rule: every store writes to a unique temp file in the
/// same directory and rename(2)s it over the final name. Readers
/// therefore see either nothing or a complete file — never a torn write
/// in progress. A crash can only leave stray `.tmp-*` droppings or, if
/// the filesystem itself tears a non-synced rename, a corrupt file —
/// which validation catches. Temp sweeping is bounded to STALE temps
/// (dead writer pid, or older than Options::StaleTempAgeSecs): a second
/// store opening the same directory must not yank a live writer's temp
/// out from under its rename (pinned by tests/serve_test.cpp's
/// two-process sweep test).
///
/// Validation on load (the crash-safety contract, pinned by
/// tests/serve_test.cpp): the container must decode as a versioned DRMA
/// image with the exact requested key inside, the module bytes must
/// decode through the versioned "DRMB" deserializer, and a program image
/// must decode through the DecodedProgram reader. Truncated files,
/// flipped bytes, wrong magic, stale versions and torn writes all fail
/// one of these gates and degrade to a cold miss (null) — never an
/// abort, never a wrong answer — after which the service recompiles and
/// re-persists over the bad file.
///
/// Garbage collection (docs/serving.md): with a byte budget set, the
/// store evicts least-recently-used artifacts (by file mtime, bumped on
/// every successful load) oldest-first until the directory fits — on
/// open and after stores. Eviction is plain unlink, so POSIX semantics
/// make "never evict mid-load" automatic: a reader that already opened
/// the file keeps its bytes. A concurrently re-stored key simply
/// reappears with a fresh mtime; the next pass sees the truth.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SERVE_ARTIFACTSTORE_H
#define DARM_SERVE_ARTIFACTSTORE_H

#include "darm/core/CompileService.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace darm {
namespace serve {

/// Directory-backed ArtifactPersistence. Thread-safe: loads are
/// independent reads, stores are temp-file + atomic rename (concurrent
/// writers of one key race benignly — compiles are deterministic, so
/// whichever rename lands last installs the same bytes).
class FileArtifactStore : public ArtifactPersistence {
public:
  struct Options {
    /// Byte budget for the whole store directory; 0 = unbounded (no GC).
    /// When set, opening the store and storing past the budget evict
    /// LRU artifacts (oldest mtime first) until the directory fits.
    size_t MaxBytes = 0;
    /// A `.tmp-*` file older than this is presumed abandoned even when
    /// its writer pid cannot be probed; temps whose embedded pid is
    /// provably dead are swept regardless of age.
    long StaleTempAgeSecs = 3600;
  };

  /// Opens (creating if needed) \p Dir as the store root, sweeps STALE
  /// temp files from crashed writers, and — with a byte budget — evicts
  /// down to it. An unusable directory is not fatal: the store then
  /// simply misses every load and drops every store (valid() reports
  /// it).
  explicit FileArtifactStore(std::string Dir);
  FileArtifactStore(std::string Dir, Options Opts);

  /// True when the store directory exists and is usable.
  bool valid() const { return Usable; }
  const std::string &directory() const { return Root; }

  std::shared_ptr<const CompiledModule>
  load(uint64_t IRHash, const std::string &Fingerprint,
       bool NeedProgram) override;

  /// Write-once: an existing valid file for the key is kept untouched,
  /// unless \p Art upgrades it with a program image (or the incumbent
  /// fails validation) — those are replaced via the same atomic rename.
  void store(const CompiledModule &Art) override;

  /// The file a key persists to (diagnostics and tests).
  std::string pathFor(uint64_t IRHash, const std::string &Fingerprint) const;

  /// Runs one GC pass now (no-op without a budget). Returns the bytes
  /// the directory's artifacts occupy after the pass.
  size_t collectGarbage();

  struct Stats {
    uint64_t Loads = 0;      ///< load() calls that returned an artifact
    uint64_t LoadMisses = 0; ///< absent, unreadable, or failed validation
    uint64_t Stores = 0;     ///< files written (fresh or replacement)
    uint64_t StoreSkips = 0; ///< write-once: a valid incumbent was kept
    uint64_t Evictions = 0;  ///< artifacts unlinked by GC
  };
  Stats stats() const;

private:
  void sweepStaleTemps();

  std::string Root;
  Options Opts;
  bool Usable = false;
  std::atomic<uint64_t> Loads{0}, LoadMisses{0}, Stores{0}, StoreSkips{0},
      Evictions{0};
  std::atomic<uint64_t> TempCounter{0};
  /// One GC pass at a time; concurrent would-be collectors skip.
  std::mutex GcM;
};

} // namespace serve
} // namespace darm

#endif // DARM_SERVE_ARTIFACTSTORE_H
