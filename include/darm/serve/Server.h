//===- Server.h - darmd serving loop -----------------------------*- C++ -*-===//
///
/// \file
/// The serving side of the darmd compile daemon (docs/caching.md): a
/// per-connection loop that reads framed CompileRequests, answers them
/// from a shared CompileService, and writes framed CompileResponses —
/// plus the Unix-socket plumbing (listen/accept/connect) and the client
/// round-trip helper the replay tool and the serve bench drive it with.
///
/// Concurrency model: one serveStream loop per connection (the daemon
/// spawns a thread per accepted socket; the bench pairs each simulated
/// client with one). All loops share one CompileService, so concurrent
/// clients get the sharded-LRU + persistence behaviour documented in
/// core/CompileService.h — racing compiles of one key are deterministic
/// duplicates, hits are lock-striped, disk artifacts are promoted once.
///
/// Error discipline: a request the server cannot even decode poisons the
/// stream (framing can no longer be trusted) — it answers one Ok=false
/// response and closes. Unparseable IR inside a well-formed request is a
/// per-request Ok=false answer; the session continues. Compile failures
/// are not errors at all: they are Ok=true artifacts with CompileError
/// set, byte-faithful to the in-process negative-caching path.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SERVE_SERVER_H
#define DARM_SERVE_SERVER_H

#include "darm/serve/Protocol.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace darm {

class CompileService;

namespace serve {

/// Aggregate serving counters across every connection of one daemon.
struct ServeCounters {
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Compiled{0};
  std::atomic<uint64_t> MemoryHits{0};
  std::atomic<uint64_t> DiskHits{0};
  std::atomic<uint64_t> Upgrades{0};
  std::atomic<uint64_t> Errors{0}; ///< Ok=false responses sent
};

/// Serves one connection: reads request frames from \p InFd until EOF
/// (or a poisoned stream), answers each on \p OutFd. Returns the number
/// of requests served. The two fds may be the same (sockets) or a pipe
/// pair (--stdio mode).
uint64_t serveStream(int InFd, int OutFd, CompileService &Svc,
                     ServeCounters *Counters = nullptr);

/// Binds and listens on a Unix-domain stream socket at \p Path
/// (unlinking a stale socket file first). Returns the listening fd, or
/// -1 with \p Err set.
int listenUnixSocket(const std::string &Path, std::string *Err = nullptr);

/// Connects to the daemon's socket. Returns the fd, or -1 with \p Err.
int connectUnixSocket(const std::string &Path, std::string *Err = nullptr);

/// Accept loop: one detached serving thread per accepted connection,
/// until accept fails (listener closed/interrupted) or \p Stop is set.
void acceptLoop(int ListenFd, CompileService &Svc,
                ServeCounters *Counters = nullptr,
                std::atomic<bool> *Stop = nullptr);

/// Client helper: one framed request, one framed response. False (with
/// \p Err set) on any transport or decode failure — a response with
/// Ok=false is still a successful round trip.
bool roundTrip(int Fd, const CompileRequest &Req, CompileResponse &Resp,
               std::string *Err = nullptr);

} // namespace serve
} // namespace darm

#endif // DARM_SERVE_SERVER_H
