//===- Server.h - darmd serving loop -----------------------------*- C++ -*-===//
///
/// \file
/// The serving side of the darmd compile daemon (docs/serving.md): a
/// per-connection loop that reads framed CompileRequests, answers them
/// from a shared CompileService, and writes framed CompileResponses —
/// plus the transport plumbing (Unix-socket and TCP listen/connect) and
/// the SocketServer accept loop darmd and the serve bench run it under.
///
/// Concurrency model: one serveStream loop per connection (SocketServer
/// spawns a tracked thread per accepted socket; the bench pairs each
/// simulated client with one). All loops share one CompileService, so
/// concurrent clients get the sharded-LRU + persistence behaviour
/// documented in core/CompileService.h — racing compiles of one key are
/// deterministic duplicates, hits are lock-striped, disk artifacts are
/// promoted once.
///
/// Error discipline: a request the server cannot even decode poisons the
/// stream (framing can no longer be trusted) — it answers one Ok=false
/// response and closes. Unparseable IR inside a well-formed request is a
/// per-request Ok=false answer; the session continues. Compile failures
/// are not errors at all: they are Ok=true artifacts with CompileError
/// set, byte-faithful to the in-process negative-caching path.
///
/// Resilience (docs/serving.md): per-connection frame deadlines mean a
/// slow-loris peer that starts a frame and stalls is disconnected
/// without pinning its thread; a bounded connection count sheds excess
/// load with a one-frame Busy answer; and a draining server finishes
/// the requests it has already read before exiting — SIGTERM costs
/// in-flight work nothing.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SERVE_SERVER_H
#define DARM_SERVE_SERVER_H

#include "darm/serve/Protocol.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace darm {

class CompileService;

namespace serve {

/// Aggregate serving counters across every connection of one daemon.
struct ServeCounters {
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Compiled{0};
  std::atomic<uint64_t> MemoryHits{0};
  std::atomic<uint64_t> DiskHits{0};
  std::atomic<uint64_t> Upgrades{0};
  std::atomic<uint64_t> Errors{0};   ///< Ok=false responses sent
  std::atomic<uint64_t> Busy{0};     ///< load-shed answers (over conn cap)
  std::atomic<uint64_t> Timeouts{0}; ///< connections cut mid-frame (deadline)
  /// Requests read off the wire but not yet answered — the gauge a
  /// draining server waits on.
  std::atomic<uint64_t> InFlight{0};
};

/// Per-session serving knobs.
struct ServeOptions {
  /// Bounds the wait for a request frame's FIRST byte. -1 = a client may
  /// hold an idle connection forever (the default: sessions are cheap,
  /// threads are the daemon's to spend).
  int IdleTimeoutMs = -1;
  /// Bounds the remainder of a request frame once it has started, and
  /// each response write. -1 = unbounded. The slow-loris guard: a peer
  /// that stalls mid-frame is disconnected, not waited on.
  int FrameTimeoutMs = -1;
  /// When set and true, the loop exits after answering the request it is
  /// currently reading/serving instead of waiting for another — the
  /// graceful-shutdown contract: a request the server already read is
  /// always answered.
  std::atomic<bool> *Drain = nullptr;
};

/// Answers one decoded request against \p Svc — the single compile path
/// behind both serveStream and Client's verified local fallback
/// (serve/Client.h): whichever side runs it, the artifact bytes are
/// identical. Request-level failures (bad IR, empty/multi-function
/// module) come back Ok=false; compile failures are Ok=true artifacts
/// with CompileError set, exactly like the in-process path.
CompileResponse serveRequest(const CompileRequest &Req, CompileService &Svc);

/// Serves one connection: reads request frames from \p InFd until EOF
/// (or a poisoned stream, deadline cut, or drain), answers each on
/// \p OutFd. Returns the number of requests served. The two fds may be
/// the same (sockets) or a pipe pair (--stdio mode).
uint64_t serveStream(int InFd, int OutFd, CompileService &Svc,
                     ServeCounters *Counters = nullptr,
                     const ServeOptions &Opts = ServeOptions());

/// Binds and listens on a Unix-domain stream socket at \p Path
/// (unlinking a stale socket file first). Returns the listening fd, or
/// -1 with \p Err set.
int listenUnixSocket(const std::string &Path, std::string *Err = nullptr);

/// Connects to the daemon's socket. Returns the fd, or -1 with \p Err.
int connectUnixSocket(const std::string &Path, std::string *Err = nullptr);

/// Binds and listens on TCP \p HostPort ("host:port"; port 0 picks an
/// ephemeral port, reported via \p BoundPort). Returns the listening fd
/// with SO_REUSEADDR set, or -1 with \p Err.
int listenTcp(const std::string &HostPort, std::string *Err = nullptr,
              uint16_t *BoundPort = nullptr);

/// Connects to TCP \p HostPort with an optional connect deadline.
/// TCP_NODELAY is set (the protocol is request/response; Nagle+delayed-
/// ack would add 40ms to every round trip). Returns fd or -1 with \p Err.
int connectTcp(const std::string &HostPort, std::string *Err = nullptr,
               int TimeoutMs = -1);

/// Endpoint dispatch, shared by every client and the daemon: a string
/// with a ':' is "host:port" (TCP), anything else is a Unix-socket path.
bool endpointIsTcp(const std::string &Endpoint);
int listenEndpoint(const std::string &Endpoint, std::string *Err = nullptr,
                   uint16_t *BoundPort = nullptr);
int connectEndpoint(const std::string &Endpoint, std::string *Err = nullptr,
                    int TimeoutMs = -1);

/// The daemon's accept loop: one tracked serving thread per accepted
/// connection, a bounded connection count with one-frame Busy load
/// shedding above it, and a graceful-drain shutdown path. Owns the
/// listening fd once start()ed.
class SocketServer {
public:
  struct Options {
    /// Concurrent-connection cap; an accept beyond it is answered with
    /// one Busy frame and closed (ServeCounters::Busy).
    unsigned MaxConnections = 256;
    /// Per-session deadlines (ServeOptions semantics).
    int IdleTimeoutMs = -1;
    int FrameTimeoutMs = -1;
  };

  explicit SocketServer(CompileService &Svc, ServeCounters *Counters = nullptr);
  SocketServer(CompileService &Svc, ServeCounters *Counters, Options Opts);
  /// Stops and joins everything still running (no drain grace: callers
  /// that care call drain() first).
  ~SocketServer();

  SocketServer(const SocketServer &) = delete;
  SocketServer &operator=(const SocketServer &) = delete;

  /// Takes ownership of \p ListenFd and spawns the acceptor thread.
  /// False if already started or the stop pipe cannot be created.
  bool start(int ListenFd);

  /// Async-signal-safe stop request: a SIGTERM/SIGINT handler may call
  /// write(2) on stopNotifyFd() directly; requestStop() does the same
  /// from normal code. The acceptor wakes, stops accepting, and every
  /// session finishes the request it already read, then closes.
  void requestStop();
  int stopNotifyFd() const { return StopWr; }

  /// Graceful shutdown: stop accepting, wait up to \p DeadlineMs for
  /// in-flight requests (ServeCounters::InFlight) to drain, then cut the
  /// remaining connections and join every session thread. Returns true
  /// when everything in flight was answered within the deadline.
  bool drain(int DeadlineMs);

  unsigned activeConnections() const {
    return Active.load(std::memory_order_relaxed);
  }

private:
  /// One accepted connection: its serving thread, its fd (for the drain
  /// cut), and a done flag the acceptor reaps on so a long-running
  /// daemon does not accumulate finished threads and fds.
  struct Session {
    std::thread T;
    int Fd = -1;
    std::shared_ptr<std::atomic<bool>> Done;
  };

  void acceptLoop();
  void reapFinishedLocked();

  CompileService &Svc;
  ServeCounters *Counters;
  Options Opts;
  std::atomic<bool> Draining{false};
  std::atomic<unsigned> Active{0};
  int ListenFd = -1, StopRd = -1, StopWr = -1;
  std::thread Acceptor;
  bool Started = false, Stopped = false;
  std::mutex ConnsM;
  std::vector<Session> Sessions;
};

/// Client helper: one framed request, one framed response. False (with
/// \p Err set) on any transport or decode failure — a response with
/// Ok=false is still a successful round trip. \p TimeoutMs bounds the
/// whole round trip per phase (write, response wait, response frame).
bool roundTrip(int Fd, const CompileRequest &Req, CompileResponse &Resp,
               std::string *Err = nullptr, int TimeoutMs = -1,
               bool *TimedOut = nullptr);

} // namespace serve
} // namespace darm

#endif // DARM_SERVE_SERVER_H
