//===- Client.h - resilient darmd client --------------------------*- C++ -*-===//
///
/// \file
/// The client side of the darmd compile service (docs/serving.md): a
/// connection-owning library that turns "compile this kernel" into a
/// framed round trip with the failure handling every real caller needs
/// and none of them should hand-roll — per-attempt deadlines, bounded
/// retries with capped decorrelated-jitter backoff, automatic reconnect,
/// and an optional verified local-compile fallback.
///
/// Retry policy: only TRANSIENT failures are retried — connect errors,
/// torn/timed-out round trips, and Busy (load-shed) responses. A
/// request-level error response (Ok=false, Busy=false: unparseable
/// request or IR) is PERMANENT — the daemon decoded the request and
/// rejected its content; sending identical bytes again cannot change the
/// answer. Compile failures are not failures at all here: they are Ok
/// responses carrying a failed artifact, exactly like the in-process
/// path.
///
/// Backoff: capped decorrelated jitter (sleep = min(cap,
/// uniform[base, 3*prev])), seeded from support/RNG so a test can pin
/// the schedule. Jitter matters more than the curve: a daemon restart
/// must not be greeted by every client retrying on the same tick.
///
/// Fallback: with FallbackMode::LocalCompile, a request whose retries
/// exhaust is compiled in-process through the same serveRequest path the
/// daemon runs. By the determinism contract (docs/caching.md), the
/// artifact bytes are identical to what the daemon would have produced —
/// degraded service, not degraded answers. The caller can tell it
/// happened only by counters().Fallbacks.
///
/// Thread model: one Client is one connection and is NOT thread-safe;
/// give each thread its own (they can share one fallback CompileService,
/// which is).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SERVE_CLIENT_H
#define DARM_SERVE_CLIENT_H

#include "darm/serve/Protocol.h"
#include "darm/support/RNG.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace darm {

class CompileService;

namespace serve {

/// What a Client does when retries exhaust.
enum class FallbackMode : uint8_t {
  Fail,         ///< request() returns false with the last transport error
  LocalCompile, ///< compile in-process (byte-identical by determinism)
};

struct ClientOptions {
  /// Daemon endpoint: "host:port" (TCP) or a Unix-socket path.
  std::string Endpoint;
  /// Bounds one connect() (TCP handshake included).
  int ConnectTimeoutMs = 2000;
  /// Bounds one round trip: request write, response wait, response frame.
  int RequestTimeoutMs = 10000;
  /// Retries after the first attempt, transient failures only.
  unsigned MaxRetries = 4;
  /// Decorrelated-jitter backoff: min(CapMs, uniform[BaseMs, 3*prev]).
  unsigned BackoffBaseMs = 10;
  unsigned BackoffCapMs = 2000;
  /// Seeds the jitter stream (deterministic backoff in tests).
  uint64_t BackoffSeed = 0x9E3779B97F4A7C15ull;
  FallbackMode Fallback = FallbackMode::Fail;
};

/// Per-client observability: what the retry machinery actually did.
struct ClientCounters {
  std::atomic<uint64_t> Attempts{0};     ///< round trips started
  std::atomic<uint64_t> Retries{0};      ///< attempts after the first
  std::atomic<uint64_t> Reconnects{0};   ///< fresh connects after the first
  std::atomic<uint64_t> BusyShed{0};     ///< Busy responses absorbed
  std::atomic<uint64_t> DeadlineHits{0}; ///< attempts cut by a deadline
  std::atomic<uint64_t> Fallbacks{0};    ///< requests answered locally
};

class Client {
public:
  /// \p FallbackSvc backs FallbackMode::LocalCompile (shared cache across
  /// clients); when null, a private CompileService is created lazily on
  /// first fallback.
  explicit Client(ClientOptions Opts, CompileService *FallbackSvc = nullptr);
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// One compile request, retried/fallen-back per the options. True when
  /// \p Resp holds a definitive answer (success, compile failure, or a
  /// PERMANENT request-level error — check Resp.Ok); false only when
  /// every attempt failed transiently and fallback is off/unusable, with
  /// \p Err describing the last failure.
  bool request(const CompileRequest &Req, CompileResponse &Resp,
               std::string *Err = nullptr);

  const ClientCounters &counters() const { return Counters; }
  bool connected() const { return Fd >= 0; }
  /// Drops the connection; the next request() reconnects.
  void disconnect();

private:
  bool ensureConnected(std::string *Err);
  /// The decorrelated-jitter schedule; \p PrevMs is the last sleep.
  unsigned nextBackoffMs(unsigned PrevMs);
  bool fallbackLocally(const CompileRequest &Req, CompileResponse &Resp,
                       std::string *Err);

  ClientOptions Opts;
  CompileService *FallbackSvc;
  std::unique_ptr<CompileService> OwnedFallback;
  RNG Jitter;
  ClientCounters Counters;
  int Fd = -1;
};

} // namespace serve
} // namespace darm

#endif // DARM_SERVE_CLIENT_H
