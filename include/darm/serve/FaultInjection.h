//===- FaultInjection.h - Seeded fault schedules for the serve stack -*- C++ -*-===//
///
/// \file
/// Deterministic fault injection for the serving layer (docs/serving.md):
/// a seeded FaultPlan decides, per I/O operation, whether the operation
/// proceeds, is shortened, fails with a scheduled errno, or tears the
/// transport — so the chaos battery (tests/chaos_test.cpp) can sweep
/// hundreds of failure schedules and assert that every request still ends
/// in a byte-identical artifact, a typed error, or a verified local
/// fallback. Never a hang, never an abort, never a torn store file.
///
/// The hook is compiled in always (the chaos battery runs against the
/// production code paths, not a test build) but is zero-cost when unset:
/// every fault-aware primitive loads one relaxed atomic pointer and takes
/// the fast path when it is null. Plans are installed process-globally
/// (setFaultPlan / ScopedFaultPlan) because the faults model the world
/// outside the process — sockets and disks — which is global too.
///
/// Determinism: a plan is a pure function of (seed, op-arrival order).
/// Concurrent threads consult one mutex-guarded RNG, so a multi-threaded
/// run is deterministic per-thread-interleaving, not globally — what the
/// battery needs is that faults *occur* on a schedule dense enough to hit
/// every path, while single-threaded sweeps replay exactly.
///
/// Fault vocabulary (mapped onto ops in FaultInjection.cpp):
///   sockets   short reads/writes, EINTR, ECONNRESET/EPIPE, mid-frame
///             disconnect (the fd is poisoned: every later op fails too),
///             slow-loris delays (bounded, milliseconds)
///   store fs  ENOSPC/EIO on writes, EIO on reads, fsync failure,
///             rename failure, open failure
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SERVE_FAULTINJECTION_H
#define DARM_SERVE_FAULTINJECTION_H

#include "darm/support/RNG.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <sys/types.h>

namespace darm {
namespace serve {

/// The operation classes a plan can fault. Socket ops cover every byte
/// moved by the framing layer (serve/Protocol.h); Fs ops cover every
/// filesystem call the artifact store makes (serve/ArtifactStore.h).
enum class FaultOp : uint8_t {
  SockRead = 0,
  SockWrite,
  FsOpen,
  FsRead,
  FsWrite,
  FsFsync,
  FsRename,
  NumOps
};

/// What the injection layer does to one operation.
struct FaultDecision {
  enum Kind : uint8_t {
    Proceed,    ///< run the real operation untouched
    Shorten,    ///< run the real operation with a smaller byte count
    Fail,       ///< do not run it; return -1 with Err as errno
    Disconnect, ///< fail with Err AND poison the fd: all later ops fail
    Delay,      ///< sleep DelayMs (slow-loris), then run the real op
  };
  Kind K = Proceed;
  int Err = 0;
  size_t ShortenTo = 0;
  unsigned DelayMs = 0;
};

/// A seeded, deterministic schedule of faults. Rate is the per-operation
/// fault probability; the fault kind is drawn from a fixed distribution
/// per op class (see decide() in FaultInjection.cpp). Thread-safe.
class FaultPlan {
public:
  struct Options {
    uint64_t Seed = 0;
    /// Per-op fault probability in [0,1]. The chaos battery sweeps this
    /// together with the seed so both sparse and dense schedules run.
    double Rate = 0.05;
    bool FaultSockets = true;
    bool FaultStore = true;
    /// Upper bound for injected slow-loris delays. Kept small so a
    /// faulted battery still terminates fast; deadline tests install
    /// plans with delays above their frame timeout.
    unsigned MaxDelayMs = 2;
  };

  explicit FaultPlan(Options O) : Opts(O), Rng(O.Seed) {}
  FaultPlan(uint64_t Seed, double Rate) : FaultPlan(mk(Seed, Rate)) {}

  /// Draws the fate of the next operation of class \p Op moving
  /// \p Bytes bytes. Deterministic in arrival order.
  FaultDecision decide(FaultOp Op, size_t Bytes);

  /// Operations seen / faulted so far (telemetry for the battery).
  uint64_t operations() const { return Operations.load(std::memory_order_relaxed); }
  uint64_t faults() const { return Faults.load(std::memory_order_relaxed); }

  /// Parses a "seed=N[,rate=R][,sock=0|1][,store=0|1][,delay-ms=N]" spec
  /// (the darmd --fault-plan argument). False with \p Err on a malformed
  /// spec.
  static bool parse(const std::string &Spec, Options &O, std::string *Err);

private:
  static Options mk(uint64_t Seed, double Rate) {
    Options O;
    O.Seed = Seed;
    O.Rate = Rate;
    return O;
  }
  Options Opts;
  std::mutex M;
  RNG Rng;
  std::atomic<uint64_t> Operations{0}, Faults{0};
};

/// Installs \p P as the process-global plan (null detaches). The serving
/// primitives consult it on every operation; when unset they cost one
/// relaxed atomic load. Not synchronized against in-flight operations —
/// install before traffic, detach after.
void setFaultPlan(FaultPlan *P);
FaultPlan *faultPlan();

/// RAII install/detach for tests.
class ScopedFaultPlan {
public:
  explicit ScopedFaultPlan(FaultPlan &P) { setFaultPlan(&P); }
  ~ScopedFaultPlan() { setFaultPlan(nullptr); }
  ScopedFaultPlan(const ScopedFaultPlan &) = delete;
  ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

/// Clears the poisoned-fd set (a Disconnect decision poisons an fd for
/// the rest of its life; fds are recycled by the OS, so long-lived
/// processes clear on detach). setFaultPlan(nullptr) calls this.
void clearPoisonedFds();

//===----------------------------------------------------------------------===//
// Fault-aware I/O primitives
//
// Every byte the serving layer moves goes through these. Each loops on
// EINTR *below* the injection point is NOT done here — callers keep
// their retry loops, so injected EINTR exercises them.
//===----------------------------------------------------------------------===//

/// read(2) with injection. Returns what read would: >0 bytes, 0 on EOF,
/// -1 with errno set (injected faults included).
ssize_t fiRead(int Fd, void *Buf, size_t N);

/// Socket-safe write: send(MSG_NOSIGNAL) on sockets so a peer closing
/// mid-write surfaces as EPIPE instead of a process-killing SIGPIPE;
/// falls back to write(2) for pipes (--stdio mode). With injection.
ssize_t fiWrite(int Fd, const void *Buf, size_t N);

/// Store filesystem ops with injection.
int fiOpen(const char *Path, int Flags, unsigned Mode);
ssize_t fiFsRead(int Fd, void *Buf, size_t N);
ssize_t fiFsWrite(int Fd, const void *Buf, size_t N);
int fiFsync(int Fd);
int fiRename(const char *From, const char *To);

/// Waits until \p Fd is ready for \p Events (POLLIN/POLLOUT) or
/// \p TimeoutMs elapses. Returns 1 ready, 0 timeout, -1 error. A
/// negative timeout waits forever. Loops on EINTR, re-arming the
/// remaining time so a signal storm cannot extend the deadline.
int fiPollWait(int Fd, short Events, int TimeoutMs);

} // namespace serve
} // namespace darm

#endif // DARM_SERVE_FAULTINJECTION_H
