//===- DecodedProgram.h - Pre-decoded kernel representation --------*- C++ -*-===//
///
/// \file
/// The simulator's execution format: the IR object graph flattened, once
/// per kernel, into dense POD arrays the execute phase can stream through
/// without touching `Value *` pointers, `dyn_cast` chains, or hash-map
/// lookups. The layout mirrors what cycle-level SIMT simulators keep per
/// warp-instruction:
///
///   - every SSA value (argument, shared array, non-void instruction) gets
///     a dense *register id*; constants and undef are normalized at decode
///     time into a shared immediate table, so an operand is a single
///     tagged 32-bit slot (high bit selects the immediate table),
///   - every instruction becomes one fixed-size DecodedInst with its
///     CostModel latency, sub-opcode (predicate / intrinsic), operand
///     slots, and destination-write normalization baked in,
///   - every basic block becomes a [first, first+count) range over the
///     instruction array, its successors and IPDOM reconvergence target
///     resolved to block indices, and the phi parallel-copies of each
///     outgoing CFG edge precomputed as a contiguous PhiCopy range.
///
/// A DecodedProgram depends only on the Function (not on the launch
/// geometry or GpuConfig), so one decode serves every launch of a kernel.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SIM_DECODEDPROGRAM_H
#define DARM_SIM_DECODEDPROGRAM_H

#include "darm/ir/Instruction.h"

#include <cstdint>
#include <vector>

namespace darm {

class Function;

/// Tagged operand: a register id, or an index into the immediate table
/// when kImmediateBit is set.
using OperandSlot = uint32_t;
inline constexpr OperandSlot kImmediateBit = 1u << 31;
/// Sentinel destination for value-less instructions.
inline constexpr uint32_t kNoRegister = ~0u;
/// Sentinel block index ("function exit" for reconvergence targets).
inline constexpr uint32_t kNoBlock = ~0u;
/// Sentinel trace index ("block heads no trace").
inline constexpr uint32_t kNoTrace = ~0u;
/// Trace formation stops after this many fused blocks: traces duplicate
/// block bodies (every eligible block heads its own trace), so the cap
/// bounds the decoded size of pathological straight-line chains at
/// O(cap x body) while leaving every real kernel's chains unsplit.
inline constexpr uint32_t kMaxTraceBlocks = 64;

/// How a destination write canonicalizes its 64-bit payload (the register
/// image of normalize() in the executor, resolved from the result type at
/// decode time).
enum class NormKind : uint8_t {
  None, ///< i64 / pointer: stored as-is
  I1,   ///< low bit
  I32,  ///< sign-extended low 32 bits
  F32   ///< f32 bit pattern in the low 32 bits
};

/// One pre-decoded instruction. Terminators carry their latency here; the
/// control-flow payload (successors, reconvergence, phi copies) lives in
/// the owning DecodedBlock.
struct DecodedInst {
  Opcode Op;
  /// ICmpPred / FCmpPred / Intrinsic, as applicable; otherwise 0.
  uint8_t SubOp = 0;
  NormKind Norm = NormKind::None;
  uint8_t Flags = 0;
  uint16_t Latency = 0;
  /// Element store size for gep / load / store.
  uint16_t ElemSize = 0;
  uint32_t Dest = kNoRegister;
  OperandSlot A = 0, B = 0, C = 0;

  // Flags bits.
  static constexpr uint8_t kIs32 = 1 << 0;      ///< i32 binary op / icmp
  static constexpr uint8_t kShared = 1 << 1;    ///< memory op targets LDS
  static constexpr uint8_t kSrcIsI1 = 1 << 2;   ///< cast source is i1
  static constexpr uint8_t kSrcIsI32 = 1 << 3;  ///< cast source is i32
};

/// One phi-node assignment on a CFG edge. All copies of an edge execute
/// with parallel-copy semantics (reads staged before any write).
struct PhiCopy {
  uint32_t Dest;
  OperandSlot Src;
  NormKind Norm;
};

/// Half-open range into DecodedProgram::PhiCopies.
struct PhiCopyRange {
  uint32_t Begin = 0;
  uint32_t End = 0;
  bool empty() const { return Begin == End; }
};

/// One pre-decoded basic block.
struct DecodedBlock {
  /// Non-phi instructions, terminator last: Insts[First .. First+Count).
  uint32_t FirstInst = 0;
  uint32_t NumInsts = 0;
  /// Successor block indices: [0] = unconditional / true target,
  /// [1] = false target; kNoBlock when absent (Ret).
  uint32_t Succ[2] = {kNoBlock, kNoBlock};
  /// Phi parallel-copies of the corresponding successor edge.
  PhiCopyRange Edge[2];
  /// Immediate post-dominator (IPDOM) as a block index: where a divergent
  /// branch out of this block reconverges. kNoBlock = function exit.
  uint32_t Reconverge = kNoBlock;
  /// Decode-time convergence guarantee (docs/performance.md): the block's
  /// terminator can never split a full warp mask — it is a ret, an
  /// unconditional branch, or a conditional branch whose condition is
  /// uniform under the ExecutionTime divergence policy (every lane that
  /// executes the condition's definition computes the same bits, at any
  /// point in time). When a warp enters such a block with its full mask,
  /// the execute phase may take the straight-line uniform fast path:
  /// dense lane loops, no per-branch mask scan, no reconvergence-stack
  /// growth — with bit-identical SimStats and memory effects, pinned by
  /// the sim goldens.
  uint8_t UniformSafe = 0;
  /// The block contains a barrier call; the fast path falls back to
  /// per-instruction accounting because a barrier suspends mid-block.
  uint8_t HasBarrier = 0;
  /// VALU-class (non-memory, non-terminator, non-barrier) instructions in
  /// the block, and the summed static latency of everything except
  /// memory ops (whose latency is dynamic: contention model). Lets the
  /// uniform fast path issue a barrier-free block's bookkeeping — issued
  /// counts, ALU lane tallies, cycle charges — as one batched update that
  /// sums to exactly what the per-instruction slow path accumulates.
  uint32_t NumAluInsts = 0;
  uint32_t StaticLatency = 0;
  /// Trace headed by this block (kNoTrace when the block is not
  /// trace-eligible, i.e. not UniformSafe or contains a barrier). Every
  /// eligible block heads its own trace, so a converged warp entering it
  /// at instruction 0 executes the whole fused chain with one dispatch.
  uint32_t TraceId = kNoTrace;
};

/// Dispatch token of one trace op, precomputed at decode so the trace
/// executors (portable switch or token-threaded computed-goto) dispatch
/// without re-inspecting opcode/flags/norm. The list is the single
/// source of truth: it expands to the TraceTok enum here and, in
/// Simulator.cpp, to the switch cases, the computed-goto label table and
/// the per-token handlers — all in the same order by construction.
/// Generic covers the long tail (divides, casts, intrinsics) by falling
/// back to the executor's full scalar switch; the named tokens are the
/// hot ALU/memory ops with SIMD lane loops (support/Simd.h).
#define DARM_SIM_TRACE_TOKEN_LIST(X)                                           \
  X(Generic)                                                                   \
  X(Move)                                                                      \
  X(Load)                                                                      \
  X(Store)                                                                     \
  X(Add32)                                                                     \
  X(Add64)                                                                     \
  X(Sub32)                                                                     \
  X(Sub64)                                                                     \
  X(Mul32)                                                                     \
  X(Mul64)                                                                     \
  X(And32)                                                                     \
  X(And64)                                                                     \
  X(Or32)                                                                      \
  X(Or64)                                                                      \
  X(Xor32)                                                                     \
  X(Xor64)                                                                     \
  X(Shl32)                                                                     \
  X(Shl64)                                                                     \
  X(LShr32)                                                                    \
  X(LShr64)                                                                    \
  X(AShr32)                                                                    \
  X(AShr64)                                                                    \
  X(SDiv)                                                                      \
  X(SRem)                                                                      \
  X(UDiv)                                                                      \
  X(URem)                                                                      \
  X(FAdd)                                                                      \
  X(FSub)                                                                      \
  X(FMul)                                                                      \
  X(FDiv)                                                                      \
  X(ICmpEq)                                                                    \
  X(ICmpNe)                                                                    \
  X(ICmpSlt)                                                                   \
  X(ICmpSle)                                                                   \
  X(ICmpSgt)                                                                   \
  X(ICmpSge)                                                                   \
  X(ICmpUlt)                                                                   \
  X(ICmpUle)                                                                   \
  X(ICmpUgt)                                                                   \
  X(ICmpUge)                                                                   \
  X(FCmpOeq)                                                                   \
  X(FCmpOne)                                                                   \
  X(FCmpOlt)                                                                   \
  X(FCmpOle)                                                                   \
  X(FCmpOgt)                                                                   \
  X(FCmpOge)                                                                   \
  X(Select)                                                                    \
  X(Gep)

enum class TraceTok : uint8_t {
#define DARM_SIM_TOK_ENUM(NAME) NAME,
  DARM_SIM_TRACE_TOKEN_LIST(DARM_SIM_TOK_ENUM)
#undef DARM_SIM_TOK_ENUM
};

inline constexpr unsigned kNumTraceToks = [] {
  unsigned N = 0;
#define DARM_SIM_TOK_COUNT(NAME) ++N;
  DARM_SIM_TRACE_TOKEN_LIST(DARM_SIM_TOK_COUNT)
#undef DARM_SIM_TOK_COUNT
  return N;
}();

/// A superblock trace: a chain of UniformSafe, barrier-free blocks
/// connected by unconditional branches, fused at decode time into one
/// flat op stream a converged warp executes with a single dispatch. The
/// phi parallel-copies of every interior edge are sequentialized into
/// the stream as Move ops (cycles broken through one scratch register),
/// so only the *final* block's terminator — a ret, an unconditional br
/// into an ineligible block, or a uniform conditional branch — remains
/// for the executor to decide, via Blocks[LastBlock]. Accounting is
/// batched trace-wide, summing exactly the per-block batched updates
/// (DecodedBlock::NumAluInsts / StaticLatency), with the budget check
/// hoisted to the trace top (docs/performance.md latitude).
struct DecodedTrace {
  /// Fused ops: TraceOps/TraceTokens[FirstOp .. FirstOp+NumOps). Body
  /// instructions of every chained block plus interior phi Moves;
  /// terminators are not materialized.
  uint32_t FirstOp = 0;
  uint32_t NumOps = 0;
  /// Leading ops free of memory instructions: this prefix has no
  /// observable effect outside the warp's private registers, so the
  /// executor may run it op-major across multiple resident warps
  /// (multi-warp batching) without perturbing the phase-sequential
  /// memory order the goldens pin.
  uint32_t PrefixOps = 0;
  /// Final chained block: its terminator, successors and edge phi
  /// copies take over when the trace's ops are done.
  uint32_t LastBlock = 0;
  /// Blocks fused (BranchesExecuted += NumBlocks, matching the slow
  /// path's one increment per block).
  uint32_t NumBlocks = 0;
  /// Sums over the chained blocks of the per-block batched accounting.
  uint32_t DynInsts = 0;      ///< Σ NumInsts (issue + budget charge)
  uint32_t NumAluInsts = 0;   ///< Σ NumAluInsts
  uint32_t StaticLatency = 0; ///< Σ StaticLatency
};

/// A kernel flattened for execution. Produced by decodeProgram().
struct DecodedProgram {
  uint32_t NumRegisters = 0;
  uint32_t EntryBlock = 0;
  /// Max phi copies on any single edge: sizes the executor's staging
  /// buffer (MaxEdgePhis x WarpSize).
  uint32_t MaxEdgePhis = 0;
  /// Static LDS bytes the kernel allocates per block.
  uint32_t SharedMemoryBytes = 0;

  std::vector<DecodedInst> Insts;
  /// TraceTok per Insts entry: the same dispatch tokens the trace
  /// streams use, precomputed for *every* decoded instruction so block
  /// bodies outside traces (divergent or not provably UniformSafe) run
  /// through the token-dispatched SIMD handlers too. Terminator entries
  /// are Generic and never dispatched.
  std::vector<uint8_t> InstTokens;
  std::vector<DecodedBlock> Blocks;
  /// Superblock traces over UniformSafe chains, one per eligible block
  /// (DecodedBlock::TraceId), with their fused op/token streams. Phi
  /// Moves in TraceOps reuse Opcode::Phi (never otherwise decoded):
  /// Dest <- norm(A).
  std::vector<DecodedTrace> Traces;
  std::vector<DecodedInst> TraceOps;
  std::vector<uint8_t> TraceTokens; ///< TraceTok per TraceOps entry
  std::vector<PhiCopy> PhiCopies;
  /// Normalized constant / undef payloads, indexed by slot & ~kImmediateBit.
  std::vector<uint64_t> Immediates;
  /// Register id of function argument i; its (launch-supplied) value is
  /// broadcast raw to every lane at warp initialization.
  std::vector<uint32_t> ArgRegisters;
  /// (register id, LDS byte offset) per shared array, broadcast likewise.
  std::vector<std::pair<uint32_t, uint64_t>> SharedArrayInit;
  /// Registers whose rows are read *cross-lane* (shfl.sync value
  /// operands): the only rows a lane can observe without its own lane
  /// having executed the defining instruction first (SSA dominance plus
  /// masked execution cover every other read). The executor zero-fills
  /// exactly these rows when recycling a pooled register file instead of
  /// clearing the whole NumRegisters x WarpSize block — a lane shuffling
  /// from a slot its source lane never wrote must still read 0.
  std::vector<uint32_t> CrossLaneRegisters;
};

/// Flattens \p F into execution form. Runs the post-dominator analysis and
/// the whole-function value numbering exactly once; the result is
/// read-only at execute time and shared by all launches of the kernel.
DecodedProgram decodeProgram(Function &F);

/// Serialization format version of the DecodedProgram image carried by
/// CompiledModule artifacts (docs/caching.md). Bump on ANY change to the
/// structs above — including enum/token reordering, which silently
/// changes the meaning of stored dispatch bytes; readers reject
/// mismatches and the cache recompiles.
inline constexpr uint16_t kProgramFormatVersion = 1;

/// Encodes \p P as a portable little-endian byte image
/// (src/sim/ProgramSerialize.cpp). Field-wise — never a struct memcpy —
/// so the bytes are platform-independent.
std::vector<uint8_t> serializeDecodedProgram(const DecodedProgram &P);

/// Decodes an image produced by serializeDecodedProgram into \p P.
/// Returns false (leaving \p P unspecified) on a version mismatch or
/// malformed/truncated bytes. The round-trip is exact: a deserialized
/// program compares field-for-field equal to the freshly decoded one
/// (pinned by tests/serialize_test.cpp).
bool deserializeDecodedProgram(const uint8_t *Data, size_t Size,
                               DecodedProgram &P);

} // namespace darm

#endif // DARM_SIM_DECODEDPROGRAM_H
