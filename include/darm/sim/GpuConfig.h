//===- GpuConfig.h - Simulated GPU parameters ----------------------*- C++ -*-===//
///
/// \file
/// Architectural parameters of the simulated SIMT device, loosely modeled
/// on the AMD Radeon Pro Vega 20 used in the paper's evaluation (§VI-A):
/// 32-wide warps executing in lockstep with an IPDOM reconvergence stack,
/// 32-bank LDS, and 128-byte global-memory coalescing segments.
/// Instruction latencies come from CostModel so the melding-profitability
/// metric and the simulator agree.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SIM_GPUCONFIG_H
#define DARM_SIM_GPUCONFIG_H

#include <cstdint>

namespace darm {

/// How the trace executor dispatches fused ops (docs/performance.md).
/// A *host*-execution knob, not a device parameter: both modes produce
/// bit-identical SimStats and memory effects (pinned by a fuzz
/// equivalence test), so selecting one never changes a simulation
/// result — only how fast the host computes it.
enum class SimDispatch : uint8_t {
  Default,  ///< threaded when compiled in (DARM_SIM_THREADED), else switch
  Switch,   ///< force the portable switch executor
  Threaded, ///< force computed-goto; falls back to switch if unavailable
};

/// Device parameters.
struct GpuConfig {
  /// Lanes per warp. Execution masks are 64 bits wide, so the simulator
  /// supports 1..64; validate() rejects anything else.
  unsigned WarpSize = 32;
  unsigned NumLdsBanks = 32;
  unsigned LdsBankWidthBytes = 4;
  unsigned CoalesceSegmentBytes = 128;
  /// Abort threshold: a warp issuing more dynamic instructions than this
  /// is assumed to be stuck in a miscompiled loop.
  uint64_t MaxDynamicInstrPerWarp = 1ull << 28;
  /// Trace-executor dispatch selection (see SimDispatch).
  SimDispatch Dispatch = SimDispatch::Default;

  /// Aborts with a clear diagnostic when the parameters cannot be
  /// simulated (WarpSize outside (0, 64], or a zero-sized bank/segment
  /// geometry that would divide by zero in the contention model). Called
  /// by SimEngine before any lane mask is built, so an oversized warp
  /// fails loudly instead of silently shifting out of the 64-bit mask.
  void validate() const;
};

/// Kernel launch geometry (1-D, as all paper kernels; 2-D blocks are
/// flattened by the kernels themselves).
struct LaunchParams {
  unsigned GridDimX = 1;
  unsigned BlockDimX = 32;
};

/// Counters gathered during simulation, mirroring the rocprof counters
/// the paper reports (§VI-B/C/D).
struct SimStats {
  uint64_t Cycles = 0;            ///< Σ over blocks of max-over-warp phase cycles
  uint64_t TotalWarpCycles = 0;   ///< Σ over all warps of issue cycles
  uint64_t InstructionsIssued = 0;
  uint64_t AluInsts = 0;          ///< VALU instructions issued
  uint64_t VectorMemInsts = 0;    ///< global loads+stores issued (Fig. 11)
  uint64_t SharedMemInsts = 0;    ///< LDS instructions issued (Fig. 11)
  uint64_t BranchesExecuted = 0;
  uint64_t DivergentBranches = 0; ///< dynamic branches that split the mask
  uint64_t AluLanesActive = 0;    ///< Σ active lanes over VALU issues
  uint64_t AluLanesTotal = 0;     ///< warpSize per VALU issue

  /// Fig. 10's metric: fraction of SIMD lanes doing useful VALU work.
  double aluUtilization() const {
    return AluLanesTotal == 0
               ? 0.0
               : static_cast<double>(AluLanesActive) /
                     static_cast<double>(AluLanesTotal);
  }

  /// Named-counter view: a stable (index -> name, value) table over every
  /// field above, so golden serialization, per-counter diffs and claims
  /// checks (docs/claims.md) register a new counter in exactly one place.
  /// Indices are append-only — recorded goldens depend on them.
  static constexpr unsigned NumCounters = 10;
  static const char *counterName(unsigned I);
  uint64_t counter(unsigned I) const;
  uint64_t &counter(unsigned I);

  SimStats &operator+=(const SimStats &O) {
    Cycles += O.Cycles;
    TotalWarpCycles += O.TotalWarpCycles;
    InstructionsIssued += O.InstructionsIssued;
    AluInsts += O.AluInsts;
    VectorMemInsts += O.VectorMemInsts;
    SharedMemInsts += O.SharedMemInsts;
    BranchesExecuted += O.BranchesExecuted;
    DivergentBranches += O.DivergentBranches;
    AluLanesActive += O.AluLanesActive;
    AluLanesTotal += O.AluLanesTotal;
    return *this;
  }
};

} // namespace darm

#endif // DARM_SIM_GPUCONFIG_H
