//===- Memory.h - Simulated device memory ---------------------------*- C++ -*-===//
///
/// \file
/// Flat byte-addressed global memory for the simulated device, with typed
/// accessors for tests and workload setup. Out-of-bounds *loads* return 0
/// (melding may speculate loads whose results are select'd away — real
/// GPUs do not fault inside mapped heaps, see DESIGN.md); out-of-bounds
/// stores abort, because no correct program or transformation produces
/// them.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SIM_MEMORY_H
#define DARM_SIM_MEMORY_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace darm {

/// Device global memory.
class GlobalMemory {
public:
  /// Reserves \p Bytes bytes zero-initialized; returns the base address.
  /// Address 0 is never allocated (acts as a guard for null/undef).
  uint64_t allocate(uint64_t Bytes, const std::string &Name = "");

  uint64_t size() const { return Bytes.size(); }

  /// Raw access with the OOB policy described above. Inline with the
  /// common element sizes special-cased: the simulator calls these once
  /// per active lane per memory instruction, the hottest leaf of the
  /// whole execute phase, and a variable-length memcpy there costs a
  /// libc call per lane.
  uint64_t load(uint64_t Addr, unsigned Size) const {
    // Overflow-proof bounds check: `Addr + Size` wraps for addresses
    // near 2^64 (a gep with a negative index produces them), which
    // would slip past a naive `>` and read before the buffer.
    if (Addr > Bytes.size() || Size > Bytes.size() - Addr)
      return 0; // speculated OOB load; see file header
    const uint8_t *P = Bytes.data() + Addr;
    if (Size == 4) {
      uint32_t V;
      std::memcpy(&V, P, 4);
      return V;
    }
    if (Size == 8) {
      uint64_t V;
      std::memcpy(&V, P, 8);
      return V;
    }
    uint64_t V = 0;
    std::memcpy(&V, P, Size);
    return V;
  }
  void store(uint64_t Addr, unsigned Size, uint64_t Value) {
    if (Addr > Bytes.size() || Size > Bytes.size() - Addr)
      reportStoreOutOfBounds();
    uint8_t *P = Bytes.data() + Addr;
    if (Size == 4) {
      const uint32_t V = static_cast<uint32_t>(Value);
      std::memcpy(P, &V, 4);
      return;
    }
    if (Size == 8) {
      std::memcpy(P, &Value, 8);
      return;
    }
    std::memcpy(P, &Value, Size);
  }

  // Typed helpers for hosts/tests.
  int32_t readI32(uint64_t Addr) const {
    return static_cast<int32_t>(load(Addr, 4));
  }
  void writeI32(uint64_t Addr, int32_t V) {
    store(Addr, 4, static_cast<uint32_t>(V));
  }
  float readF32(uint64_t Addr) const;
  void writeF32(uint64_t Addr, float V);

  /// Bulk helpers (element index based on i32/f32 arrays).
  void fillI32(uint64_t Base, const std::vector<int32_t> &Data);
  std::vector<int32_t> dumpI32(uint64_t Base, size_t Count) const;
  void fillF32(uint64_t Base, const std::vector<float> &Data);
  std::vector<float> dumpF32(uint64_t Base, size_t Count) const;

private:
  /// Cold path of store(), out of line (aborts via reportFatalError).
  [[noreturn]] void reportStoreOutOfBounds() const;

  std::vector<uint8_t> Bytes = std::vector<uint8_t>(64, 0); // guard page
};

} // namespace darm

#endif // DARM_SIM_MEMORY_H
