//===- Simulator.h - SIMT warp simulator ----------------------------*- C++ -*-===//
///
/// \file
/// A functional + timing simulator of the SIMT execution model (§II-A):
/// warps execute the kernel in lockstep; divergent branches push entries
/// onto a reconvergence stack keyed on the branch's immediate
/// post-dominator (IPDOM), serializing the two paths exactly as commodity
/// GPU hardware does. Within a thread block, warps advance barrier-phase
/// by barrier-phase; a phase costs the maximum over its warps (parallel
/// SIMD units). Timing: each issued instruction costs its CostModel
/// latency, plus LDS bank-conflict and global-memory coalescing penalties.
///
/// The simulator is split into two layers (docs/simulator.md):
///
///   decode  — decodeProgram() flattens the IR into a DecodedProgram once
///             per kernel (dense register ids, immediate table, per-edge
///             phi copies, pre-resolved reconvergence targets, baked
///             latencies);
///   execute — SimEngine streams warps through the decoded arrays with one
///             contiguous structure-of-arrays register file per warp,
///             recycled across blocks and launches through a free pool.
///
/// This simulator is the stand-in for the paper's AMD Vega 20 (DESIGN.md,
/// substitutions table): every metric the paper's figures report — cycle
/// counts, VALU (ALU) utilization, vector/LDS memory instruction counts —
/// is produced here from the same IR the melding pass transforms.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SIM_SIMULATOR_H
#define DARM_SIM_SIMULATOR_H

#include "darm/sim/DecodedProgram.h"
#include "darm/sim/GpuConfig.h"
#include "darm/sim/Memory.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace darm {

class Function;

/// Host-side execution statistics of the trace engine, reset by every
/// run(). Deliberately NOT part of SimStats: the SimStats counter table
/// is append-only and serialized into recorded goldens, while these
/// describe how the *host* executed the launch (trace-path coverage for
/// bench/sim_throughput), not what the simulated device did.
struct EngineStats {
  uint64_t TraceRuns = 0;    ///< trace dispatches (one per fused chain run)
  uint64_t TraceInstrs = 0;  ///< dynamic instructions retired via traces
  uint64_t BatchedTraceInstrs = 0; ///< subset retired op-major multi-warp
};

/// The execute phase: owns one DecodedProgram plus the reusable execution
/// scratch (warp register files, LDS image, phi staging buffer). Decode
/// happens once in the constructor; run() may be called any number of
/// times — multi-launch benchmarks and throughput sweeps replay the same
/// decoded kernel without re-decoding or reallocating.
///
/// Not thread-safe: one SimEngine simulates one kernel at a time.
class SimEngine {
public:
  /// Decodes \p Kernel. \p Cfg is validated (GpuConfig::validate) so a
  /// bad warp size fails loudly here instead of corrupting lane masks.
  explicit SimEngine(Function &Kernel, const GpuConfig &Cfg = GpuConfig());
  /// Adopts an already-decoded program (e.g. deserialized from a
  /// CompiledModule artifact, docs/caching.md) and skips the decode
  /// phase entirely. Behaves bit-identically to decoding the kernel the
  /// program was produced from.
  explicit SimEngine(DecodedProgram Program,
                     const GpuConfig &Cfg = GpuConfig());
  ~SimEngine();

  SimEngine(const SimEngine &) = delete;
  SimEngine &operator=(const SimEngine &) = delete;

  /// Executes one launch over the geometry. \p Args are raw 64-bit
  /// argument values in declaration order (buffer pointers are
  /// GlobalMemory base addresses). Blocks run sequentially over the
  /// shared \p Mem; SimStats::Cycles accumulates each block's
  /// max-over-warps phase cycles.
  SimStats run(const LaunchParams &LP, const std::vector<uint64_t> &Args,
               GlobalMemory &Mem);

  const DecodedProgram &program() const { return Prog; }
  const GpuConfig &config() const { return Cfg; }

  /// Host-side trace-engine statistics of the most recent run().
  const EngineStats &engineStats() const;
  /// The dispatch mode the trace executor actually resolved to —
  /// "threaded" or "switch" (GpuConfig::Dispatch requests, availability
  /// decides; see DARM_SIM_THREADED).
  const char *dispatchMode() const;

private:
  struct Scratch; // execution state pools, defined in Simulator.cpp

  void initScratch();
  void initProgramScratch();

  DecodedProgram Prog;
  GpuConfig Cfg;
  std::unique_ptr<Scratch> S;
};

/// One-shot convenience wrapper: decodes \p Kernel and runs a single
/// launch. Callers that launch the same kernel repeatedly should hold a
/// SimEngine instead to pay the decode once.
SimStats runKernel(Function &Kernel, const LaunchParams &LP,
                   const std::vector<uint64_t> &Args, GlobalMemory &Mem,
                   const GpuConfig &Cfg = GpuConfig());

} // namespace darm

#endif // DARM_SIM_SIMULATOR_H
