//===- Simulator.h - SIMT warp simulator ----------------------------*- C++ -*-===//
///
/// \file
/// A functional + timing simulator of the SIMT execution model (§II-A):
/// warps execute the IR in lockstep; divergent branches push entries onto
/// a reconvergence stack keyed on the branch's immediate post-dominator
/// (IPDOM), serializing the two paths exactly as commodity GPU hardware
/// does. Within a thread block, warps advance barrier-phase by
/// barrier-phase; a phase costs the maximum over its warps (parallel SIMD
/// units). Timing: each issued instruction costs its CostModel latency,
/// plus LDS bank-conflict and global-memory coalescing penalties.
///
/// This simulator is the stand-in for the paper's AMD Vega 20 (DESIGN.md,
/// substitutions table): every metric the paper's figures report — cycle
/// counts, VALU (ALU) utilization, vector/LDS memory instruction counts —
/// is produced here from the same IR the melding pass transforms.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_SIM_SIMULATOR_H
#define DARM_SIM_SIMULATOR_H

#include "darm/sim/GpuConfig.h"
#include "darm/sim/Memory.h"

#include <cstdint>
#include <vector>

namespace darm {

class Function;

/// Executes \p Kernel over the launch geometry. \p Args are raw 64-bit
/// argument values in declaration order (buffer pointers are GlobalMemory
/// base addresses). Blocks run sequentially over the shared \p Mem;
/// SimStats::Cycles accumulates each block's max-over-warps phase cycles.
SimStats runKernel(Function &Kernel, const LaunchParams &LP,
                   const std::vector<uint64_t> &Args, GlobalMemory &Mem,
                   const GpuConfig &Cfg = GpuConfig());

} // namespace darm

#endif // DARM_SIM_SIMULATOR_H
