//===- DARMPass.h - Control-flow melding driver --------------------*- C++ -*-===//
///
/// \file
/// Algorithm 1 of the paper: scan for meldable divergent regions, simplify
/// them, align their subgraph chains, meld every pair above the
/// profitability threshold, clean up (simplifycfg + DCE + SSA repair),
/// recompute analyses, and repeat to a fixed point.
///
/// The Branch Fusion baseline is runBranchFusion() — DARM restricted to
/// diamond-shaped regions, exactly as the paper's own evaluation
/// implemented it (§VI-A).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_DARMPASS_H
#define DARM_CORE_DARMPASS_H

#include "darm/core/DARMConfig.h"

namespace darm {

class Function;

/// Runs DARM on \p F. Returns true if the function changed.
bool runDARM(Function &F, const DARMConfig &Cfg = DARMConfig(),
             DARMStats *Stats = nullptr);

/// The Branch Fusion baseline [5]: melding limited to diamonds.
bool runBranchFusion(Function &F, DARMStats *Stats = nullptr);

} // namespace darm

#endif // DARM_CORE_DARMPASS_H
