//===- DARMPass.h - Control-flow melding driver --------------------*- C++ -*-===//
///
/// \file
/// Algorithm 1 of the paper (§IV-A), as a transform/PassManager pipeline of
/// five named stages — simplifycfg → darm-meld → ssa-repair → dce → verify —
/// run to a fixed point: scan for meldable divergent regions, simplify
/// them, align their subgraph chains, meld every pair above the
/// profitability threshold, clean up, recompute analyses, and repeat while
/// the darm-meld stage keeps finding regions. Stages are registered
/// individually so they can be timed, inserted around, and reordered.
///
/// The Branch Fusion baseline is runBranchFusion() — DARM restricted to
/// diamond-shaped regions, exactly as the paper's own evaluation
/// implemented it (§VI-A).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_DARMPASS_H
#define DARM_CORE_DARMPASS_H

#include "darm/core/DARMConfig.h"

namespace darm {

class Function;
class PassManager;

/// Registers the DARM pipeline on \p PM as named stages, in order:
///
///   [constprop → algebraic → gvn → licm → loop-unroll]
///     → simplifycfg → darm-meld → ssa-repair → dce → verify
///
/// The bracketed canonicalization stages are scheduled only when their
/// DARMConfig toggle is set (all default off) — see docs/passes.md for
/// each stage's contract and the ordering rationale. Each stage is a
/// separate PassManager pass, so callers can time stages individually
/// (PassManager::timings / cumulativeTimings) and later PRs can insert or
/// reorder stages. The verify stage is only registered when
/// \p Cfg.VerifyEachStep is set; it aborts on invalid IR and otherwise
/// reports "no change".
///
/// \p MeldedLastRun, when non-null, is written by the darm-meld stage on
/// every PM.run(): true iff that traversal melded or restructured a region.
/// This is Algorithm 1's do-while condition — drivers loop while it holds.
/// The pointer is captured by the registered passes and must outlive \p PM.
void buildDARMPipeline(PassManager &PM, const DARMConfig &Cfg = DARMConfig(),
                       DARMStats *Stats = nullptr,
                       bool *MeldedLastRun = nullptr);

/// Runs DARM on \p F: builds the buildDARMPipeline() pipeline and runs it
/// to a fixed point (bounded by Cfg.MaxIterations; only the darm-meld
/// stage extends the loop). Returns true if any stage changed the
/// function — melds, but also pipeline cleanup such as simplifycfg on an
/// unmeldable kernel. Check Stats->RegionsMelded to distinguish. When
/// \p Stats is given, Stats->StageSeconds accumulates the per-stage
/// wall-clock totals across all iterations (and across calls sharing the
/// same stats object).
bool runDARM(Function &F, const DARMConfig &Cfg = DARMConfig(),
             DARMStats *Stats = nullptr);

/// The Branch Fusion baseline [5]: melding limited to diamonds.
bool runBranchFusion(Function &F, DARMStats *Stats = nullptr);

} // namespace darm

#endif // DARM_CORE_DARMPASS_H
