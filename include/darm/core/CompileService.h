//===- CompileService.h - In-process compile cache ----------------*- C++ -*-===//
///
/// \file
/// A sharded, content-addressed cache of CompiledModule artifacts: the
/// get-or-compile front door every repeated-compile consumer goes
/// through (check::measureCorpus, fuzz::sweepSeeds, bench/sim_throughput,
/// the darm_opt/darm_check/darm_fuzz --cache flags), and the seed of the
/// ROADMAP's darmd compilation service.
///
/// Concurrency: safe under the support/Parallel.h pool. Keys hash to one
/// of NumShards independently-locked shards, so workers sweeping
/// different kernels rarely contend. No lock is held while compiling:
/// two workers racing on the same cold key may both compile, and the
/// first insert wins — acceptable because compileToArtifact is
/// deterministic (both produce byte-identical artifacts), and the loser
/// counts the duplicate work in DuplicateCompiles rather than blocking a
/// whole shard behind one multi-second meld.
///
/// Memory: each shard owns an LRU list under MaxBytes/NumShards; inserts
/// evict from the cold tail. Artifacts are handed out as
/// shared_ptr<const>, so eviction never invalidates a consumer's copy.
///
/// Determinism contract (docs/caching.md, pinned by the fuzz serialize
/// axis + tests/compile_service_test.cpp): a consumer gets byte-identical
/// results at any --jobs count and any cache state, because hit and miss
/// return the same deterministic artifact value.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_COMPILESERVICE_H
#define DARM_CORE_COMPILESERVICE_H

#include "darm/core/CompiledModule.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace darm {

class Function;

/// Sharded LRU cache mapping (IRHash, Fingerprint) to artifacts.
class CompileService {
public:
  using Artifact = std::shared_ptr<const CompiledModule>;

  struct Options {
    /// Total retained-byte budget across all shards (CompiledModule::
    /// byteSize). 256 MiB holds every kernel x config this repo compiles
    /// many times over; sweeps shrink it to exercise eviction.
    size_t MaxBytes = 256u << 20;
    /// Lock striping width. More shards = less contention, coarser
    /// per-shard LRU. Must be >= 1.
    unsigned NumShards = 16;
  };

  /// Counter snapshot (stats()); totals since construction or clear().
  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    /// Compiles whose insert lost the race to an equal artifact.
    uint64_t DuplicateCompiles = 0;
    size_t Bytes = 0;
    size_t Entries = 0;

    double hitRate() const {
      uint64_t Total = Hits + Misses;
      return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                   : 0.0;
    }
  };

  CompileService();
  explicit CompileService(Options Opts);

  /// The front door: returns the cached artifact for (hash(F), Cfg) or
  /// compiles, caches and returns it. With \p IncludeProgram, guarantees
  /// the returned artifact carries a DecodedProgram image (upgrading a
  /// cached program-less entry counts as a miss). Never returns null;
  /// failed compiles come back as artifacts with failed() set.
  Artifact getOrCompile(const Function &F, const DARMConfig &Cfg,
                        bool IncludeProgram = true);

  /// Same contract for a caller-supplied compile step (CompileFn), keyed
  /// by an explicit fingerprint that must uniquely identify it — how the
  /// fuzz oracle caches its named transform configurations.
  Artifact getOrCompile(const Function &F, const std::string &Fingerprint,
                        const CompileFn &Compile, bool IncludeProgram = true);

  /// Probe without compiling; null on miss. Does not touch hit/miss
  /// counters (diagnostic use).
  Artifact lookup(uint64_t IRHash, const std::string &Fingerprint) const;

  CacheStats stats() const;
  /// Empties every shard and zeroes the counters.
  void clear();

private:
  struct Key {
    uint64_t IRHash;
    std::string Fingerprint;
    bool operator==(const Key &O) const {
      return IRHash == O.IRHash && Fingerprint == O.Fingerprint;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };
  struct Entry {
    Key K;
    Artifact Art;
    size_t Bytes;
  };
  struct Shard {
    mutable std::mutex M;
    /// Hot-first LRU order; Map points into this list.
    std::list<Entry> Lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> Map;
    size_t Bytes = 0;
  };

  Shard &shardFor(const Key &K) const;
  /// Inserts (or refreshes) under the shard lock, evicting the cold tail
  /// past the per-shard budget. Returns the artifact now cached — the
  /// existing one when \p Art lost an insert race.
  Artifact insert(const Key &K, Artifact Art, bool RequireProgram);

  Options Opts;
  size_t ShardBudget;
  mutable std::vector<Shard> Shards;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Evictions{0},
      DuplicateCompiles{0};
};

} // namespace darm

#endif // DARM_CORE_COMPILESERVICE_H
