//===- CompileService.h - In-process compile cache ----------------*- C++ -*-===//
///
/// \file
/// A sharded, content-addressed cache of CompiledModule artifacts: the
/// get-or-compile front door every repeated-compile consumer goes
/// through (check::measureCorpus, fuzz::sweepSeeds, bench/sim_throughput,
/// the darm_opt/darm_check/darm_fuzz --cache flags), and the seed of the
/// ROADMAP's darmd compilation service.
///
/// Concurrency: safe under the support/Parallel.h pool. Keys hash to one
/// of NumShards independently-locked shards, so workers sweeping
/// different kernels rarely contend. No lock is held while compiling:
/// two workers racing on the same cold key may both compile, and the
/// first insert wins — acceptable because compileToArtifact is
/// deterministic (both produce byte-identical artifacts), and the loser
/// counts the duplicate work in DuplicateCompiles rather than blocking a
/// whole shard behind one multi-second meld.
///
/// Memory: each shard owns an LRU list under MaxBytes/NumShards; inserts
/// evict from the cold tail. Artifacts are handed out as
/// shared_ptr<const>, so eviction never invalidates a consumer's copy.
///
/// Determinism contract (docs/caching.md, pinned by the fuzz serialize
/// axis + tests/compile_service_test.cpp): a consumer gets byte-identical
/// results at any --jobs count and any cache state, because hit and miss
/// return the same deterministic artifact value.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_COMPILESERVICE_H
#define DARM_CORE_COMPILESERVICE_H

#include "darm/core/CompiledModule.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace darm {

class Function;

/// Second-level artifact storage behind a CompileService — the hook the
/// on-disk store (serve/ArtifactStore.h FileArtifactStore) plugs in so
/// warm starts survive restarts. The service probes it after an
/// in-memory miss and feeds it every fresh compile. Implementations must
/// be safe for concurrent load/store from many threads, must validate
/// what they return (a corrupt or stale persisted artifact degrades to a
/// null — a cold miss — never an abort), and must only ever return
/// artifacts that are byte-faithful to what was stored.
class ArtifactPersistence {
public:
  virtual ~ArtifactPersistence() = default;

  /// Returns the persisted artifact for (IRHash, Fingerprint), or null
  /// when absent/invalid. With \p NeedProgram, an artifact without a
  /// DecodedProgram image does not satisfy the request (failed artifacts
  /// always do — there is nothing to decode).
  virtual std::shared_ptr<const CompiledModule>
  load(uint64_t IRHash, const std::string &Fingerprint, bool NeedProgram) = 0;

  /// Persists a freshly compiled artifact. Write-once per key: an
  /// already-persisted equal artifact may be skipped; only a program-
  /// image upgrade replaces an existing entry.
  virtual void store(const CompiledModule &Art) = 0;
};

/// Where a getOrCompile answer came from (the optional out-param) — the
/// daemon reports this per response so clients can assert "warm restarts
/// recompile nothing".
enum class CacheSource : uint8_t {
  Compiled,  ///< cold miss: freshly compiled (and persisted, if wired)
  MemoryHit, ///< served from the in-memory LRU
  DiskHit,   ///< in-memory miss served from ArtifactPersistence
  Upgraded,  ///< recompiled to add a program image to a cached entry
};

/// Sharded LRU cache mapping (IRHash, Fingerprint) to artifacts.
class CompileService {
public:
  using Artifact = std::shared_ptr<const CompiledModule>;

  struct Options {
    /// Total retained-byte budget across all shards (CompiledModule::
    /// byteSize). 256 MiB holds every kernel x config this repo compiles
    /// many times over; sweeps shrink it to exercise eviction.
    size_t MaxBytes = 256u << 20;
    /// Lock striping width. More shards = less contention, coarser
    /// per-shard LRU. Must be >= 1.
    unsigned NumShards = 16;
  };

  /// Counter snapshot (stats()); totals since construction or clear().
  struct CacheStats {
    uint64_t Hits = 0;
    /// Cold compiles only. Program-image upgrades of cached entries are
    /// counted in Upgrades, NOT here — an upgrade re-runs the compile
    /// but the cache did have the key, so folding it into Misses would
    /// skew hit_rate in table2_compile_time --cache-json and the serve
    /// bench.
    uint64_t Misses = 0;
    /// IncludeProgram requests that found a cached program-less entry
    /// and recompiled to add the image. Excluded from both Hits and
    /// Misses (and from hitRate()).
    uint64_t Upgrades = 0;
    /// In-memory misses answered by the ArtifactPersistence layer
    /// (no recompile). Counted separately from Hits and Misses.
    uint64_t DiskHits = 0;
    uint64_t Evictions = 0;
    /// Compiles whose insert lost the race to an equal artifact.
    uint64_t DuplicateCompiles = 0;
    /// Artifacts rejected from the cache because a single one exceeds
    /// the per-shard byte budget (see insert()'s oversized policy).
    uint64_t Oversized = 0;
    size_t Bytes = 0;
    size_t Entries = 0;

    /// Hits over hits + cold misses. Upgrades and disk hits are
    /// excluded: an upgrade is neither a hit nor a cold key, and a disk
    /// hit is a different tier's hit (report DiskHits alongside).
    double hitRate() const {
      uint64_t Total = Hits + Misses;
      return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                   : 0.0;
    }
  };

  CompileService();
  explicit CompileService(Options Opts);

  /// The front door: returns the cached artifact for (hash(F), Cfg) or
  /// compiles, caches and returns it. With \p IncludeProgram, guarantees
  /// the returned artifact carries a DecodedProgram image (upgrading a
  /// cached program-less entry recompiles and counts in
  /// CacheStats::Upgrades). Never returns null; failed compiles come
  /// back as artifacts with failed() set. \p Source, when non-null,
  /// receives where the answer came from (the daemon reports it per
  /// response).
  Artifact getOrCompile(const Function &F, const DARMConfig &Cfg,
                        bool IncludeProgram = true,
                        CacheSource *Source = nullptr);

  /// Same contract for a caller-supplied compile step (CompileFn), keyed
  /// by an explicit fingerprint that must uniquely identify it — how the
  /// fuzz oracle caches its named transform configurations.
  Artifact getOrCompile(const Function &F, const std::string &Fingerprint,
                        const CompileFn &Compile, bool IncludeProgram = true,
                        CacheSource *Source = nullptr);

  /// Wires a second-level artifact store (not owned; may be null to
  /// detach). After an in-memory miss the service probes it before
  /// compiling (a valid persisted artifact is served as a DiskHit and
  /// promoted into the LRU), and every fresh compile is stored back —
  /// including oversized artifacts the in-memory cache rejects, so
  /// repeat requests for them become disk hits instead of recompiles.
  /// Set before serving traffic: the pointer itself is not synchronized.
  void setPersistence(ArtifactPersistence *P) { Persist = P; }
  ArtifactPersistence *persistence() const { return Persist; }

  /// Probe without compiling; null on miss. Does not touch hit/miss
  /// counters (diagnostic use).
  Artifact lookup(uint64_t IRHash, const std::string &Fingerprint) const;

  CacheStats stats() const;
  /// Empties every shard and zeroes the counters.
  void clear();

private:
  struct Key {
    uint64_t IRHash;
    std::string Fingerprint;
    bool operator==(const Key &O) const {
      return IRHash == O.IRHash && Fingerprint == O.Fingerprint;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };
  struct Entry {
    Key K;
    Artifact Art;
    size_t Bytes;
  };
  struct Shard {
    mutable std::mutex M;
    /// Hot-first LRU order; Map points into this list.
    std::list<Entry> Lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> Map;
    size_t Bytes = 0;
  };

  Shard &shardFor(const Key &K) const;
  /// Inserts (or refreshes) under the shard lock, evicting the cold tail
  /// past the per-shard budget. Returns the artifact now cached — the
  /// existing one when \p Art lost an insert race.
  ///
  /// Oversized policy: an artifact whose byteSize() alone exceeds the
  /// per-shard budget is REJECTED from the cache (returned to the caller
  /// uncached, counted in CacheStats::Oversized) rather than inserted.
  /// Admitting it would either pin the shard permanently over budget or
  /// evict every other entry for a value that still doesn't fit; repeat
  /// requests for an oversized key recompile (or hit the persistence
  /// layer, which has no byte budget). Every cached entry therefore fits
  /// its shard's budget individually, which is what lets eviction run
  /// the tail down without a "keep at least one" escape hatch.
  Artifact insert(const Key &K, Artifact Art, bool RequireProgram);

  Options Opts;
  size_t ShardBudget;
  ArtifactPersistence *Persist = nullptr;
  mutable std::vector<Shard> Shards;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Upgrades{0}, DiskHits{0},
      Evictions{0}, DuplicateCompiles{0}, Oversized{0};
};

} // namespace darm

#endif // DARM_CORE_COMPILESERVICE_H
