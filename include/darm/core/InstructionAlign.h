//===- InstructionAlign.h - Intra-block instruction alignment -------*- C++ -*-===//
///
/// \file
/// Aligns the instruction sequences of two corresponding basic blocks
/// (§IV-C "Instruction Alignment"). Compatible instructions — same opcode,
/// same result type, matching payload (predicate / intrinsic / address
/// space) — may meld into one instruction; higher-latency instructions are
/// prioritized by latency-weighted scores, following Branch Fusion [5] and
/// the compatibility criteria of Rocha et al. [21]. Phi nodes and
/// terminators are excluded (handled structurally by the melder).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_INSTRUCTIONALIGN_H
#define DARM_CORE_INSTRUCTIONALIGN_H

#include "darm/core/SequenceAlign.h"

#include <vector>

namespace darm {

class BasicBlock;
class Instruction;

/// One aligned position: an I-I match (both set) or an I-G gap.
struct InstrAlignEntry {
  Instruction *TrueInst = nullptr;  ///< from the true-path block
  Instruction *FalseInst = nullptr; ///< from the false-path block

  bool isMatch() const { return TrueInst && FalseInst; }
};

/// True if \p A and \p B may meld into a single instruction.
bool areInstructionsCompatible(const Instruction *A, const Instruction *B);

/// The alignable body of a block: everything except phis and the
/// terminator.
std::vector<Instruction *> alignableInstructions(BasicBlock *BB);

/// Aligns the bodies of \p TrueBB and \p FalseBB. \p GapPenalty <= 0.
std::vector<InstrAlignEntry> alignInstructions(BasicBlock *TrueBB,
                                               BasicBlock *FalseBB,
                                               double GapPenalty);

} // namespace darm

#endif // DARM_CORE_INSTRUCTIONALIGN_H
