//===- SequenceAlign.h - Smith-Waterman sequence alignment ---------*- C++ -*-===//
///
/// \file
/// The Smith-Waterman local alignment algorithm [19], used twice by DARM
/// (§IV-C): once to align the SESE subgraph sequences of the two divergent
/// paths (scored by melding profitability MP_S) and once to align the
/// instruction sequences of corresponding basic blocks (scored by latency).
/// Elements outside the optimal local alignment are reported as gaps, so
/// the result always covers both input sequences completely.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_SEQUENCEALIGN_H
#define DARM_CORE_SEQUENCEALIGN_H

#include <functional>
#include <vector>

namespace darm {

/// One entry of an alignment: indices into the two sequences, or -1 on the
/// side that takes a gap.
struct AlignEntry {
  int A; ///< index into sequence A, or -1 (gap)
  int B; ///< index into sequence B, or -1 (gap)

  bool isMatch() const { return A >= 0 && B >= 0; }
  bool operator==(const AlignEntry &O) const { return A == O.A && B == O.B; }
};

/// Computes a Smith-Waterman local alignment of sequences of length
/// \p LenA and \p LenB. \p Score(i, j) returns the (possibly negative)
/// benefit of aligning A[i] with B[j]; incompatible pairs should return a
/// large negative value. \p GapPenalty (<= 0) is charged per skipped
/// element inside the aligned window.
///
/// The returned list covers every index of both sequences exactly once, in
/// order: indices before/after the optimal local window appear as gaps.
std::vector<AlignEntry>
smithWaterman(unsigned LenA, unsigned LenB,
              const std::function<double(unsigned, unsigned)> &Score,
              double GapPenalty);

/// Score of the best local alignment window (the maximum DP cell), without
/// the traceback. Useful for profitability queries.
double smithWatermanScore(unsigned LenA, unsigned LenB,
                          const std::function<double(unsigned, unsigned)> &Score,
                          double GapPenalty);

} // namespace darm

#endif // DARM_CORE_SEQUENCEALIGN_H
