//===- SequenceAlign.h - Smith-Waterman sequence alignment ---------*- C++ -*-===//
///
/// \file
/// The Smith-Waterman local alignment algorithm [19], used twice by DARM
/// (§IV-C): once to align the SESE subgraph sequences of the two divergent
/// paths (scored by melding profitability MP_S) and once to align the
/// instruction sequences of corresponding basic blocks (scored by latency).
/// Elements outside the optimal local alignment are reported as gaps, so
/// the result always covers both input sequences completely.
///
/// The entry points are templates over the score callable so a lambda is
/// invoked directly in the O(|A|·|B|) DP inner loop — no std::function
/// type erasure per cell. `std::function` overloads remain as thin
/// wrappers for callers that store the scorer.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_SEQUENCEALIGN_H
#define DARM_CORE_SEQUENCEALIGN_H

#include <algorithm>
#include <functional>
#include <vector>

namespace darm {

/// One entry of an alignment: indices into the two sequences, or -1 on the
/// side that takes a gap.
struct AlignEntry {
  int A; ///< index into sequence A, or -1 (gap)
  int B; ///< index into sequence B, or -1 (gap)

  bool isMatch() const { return A >= 0 && B >= 0; }
  bool operator==(const AlignEntry &O) const { return A == O.A && B == O.B; }
};

namespace detail {

/// The Smith-Waterman DP matrix plus the location/value of its maximum.
struct SWDPResult {
  std::vector<double> H; ///< (LenA+1) x (LenB+1), row-major
  unsigned BestI = 0, BestJ = 0;
  double BestScore = 0;
};

/// Fills the DP matrix. \p Score is invoked directly (statically bound
/// when the caller passes a lambda or function object).
template <typename ScoreFn>
SWDPResult runSmithWatermanDP(unsigned LenA, unsigned LenB, ScoreFn &&Score,
                              double GapPenalty) {
  SWDPResult R;
  unsigned W = LenB + 1;
  R.H.assign((LenA + 1) * W, 0.0);
  for (unsigned I = 1; I <= LenA; ++I) {
    for (unsigned J = 1; J <= LenB; ++J) {
      double Diag = R.H[(I - 1) * W + (J - 1)] + Score(I - 1, J - 1);
      double Up = R.H[(I - 1) * W + J] + GapPenalty;
      double Left = R.H[I * W + (J - 1)] + GapPenalty;
      double Best = std::max({0.0, Diag, Up, Left});
      R.H[I * W + J] = Best;
      if (Best > R.BestScore) {
        R.BestScore = Best;
        R.BestI = I;
        R.BestJ = J;
      }
    }
  }
  return R;
}

} // namespace detail

/// Computes a Smith-Waterman local alignment of sequences of length
/// \p LenA and \p LenB. \p Score(i, j) returns the (possibly negative)
/// benefit of aligning A[i] with B[j]; incompatible pairs should return a
/// large negative value. \p GapPenalty (<= 0) is charged per skipped
/// element inside the aligned window.
///
/// The returned list covers every index of both sequences exactly once, in
/// order: indices before/after the optimal local window appear as gaps.
template <typename ScoreFn>
std::vector<AlignEntry> smithWaterman(unsigned LenA, unsigned LenB,
                                      ScoreFn &&Score, double GapPenalty) {
  detail::SWDPResult R =
      detail::runSmithWatermanDP(LenA, LenB, Score, GapPenalty);
  unsigned W = LenB + 1;

  // Traceback from the best cell down to a zero cell.
  std::vector<AlignEntry> Window;
  unsigned I = R.BestI, J = R.BestJ;
  while (I > 0 && J > 0 && R.H[I * W + J] > 0.0) {
    double Cur = R.H[I * W + J];
    double Diag = R.H[(I - 1) * W + (J - 1)] + Score(I - 1, J - 1);
    if (Cur == Diag) {
      Window.push_back({static_cast<int>(I - 1), static_cast<int>(J - 1)});
      --I;
      --J;
    } else if (Cur == R.H[(I - 1) * W + J] + GapPenalty) {
      Window.push_back({static_cast<int>(I - 1), -1});
      --I;
    } else {
      Window.push_back({-1, static_cast<int>(J - 1)});
      --J;
    }
  }
  std::reverse(Window.begin(), Window.end());

  // Compose the full-coverage alignment: leading gaps, the window, and
  // trailing gaps.
  std::vector<AlignEntry> Full;
  for (unsigned K = 0; K < I; ++K)
    Full.push_back({static_cast<int>(K), -1});
  for (unsigned K = 0; K < J; ++K)
    Full.push_back({-1, static_cast<int>(K)});
  Full.insert(Full.end(), Window.begin(), Window.end());
  for (unsigned K = R.BestI; K < LenA; ++K)
    Full.push_back({static_cast<int>(K), -1});
  for (unsigned K = R.BestJ; K < LenB; ++K)
    Full.push_back({-1, static_cast<int>(K)});
  return Full;
}

/// Score of the best local alignment window (the maximum DP cell), without
/// the traceback. Useful for profitability queries.
template <typename ScoreFn>
double smithWatermanScore(unsigned LenA, unsigned LenB, ScoreFn &&Score,
                          double GapPenalty) {
  return detail::runSmithWatermanDP(LenA, LenB, Score, GapPenalty).BestScore;
}

// Thin type-erased wrappers (defined in SequenceAlign.cpp) for callers
// that already hold a std::function; lambdas bind to the templates above.
std::vector<AlignEntry>
smithWaterman(unsigned LenA, unsigned LenB,
              const std::function<double(unsigned, unsigned)> &Score,
              double GapPenalty);

double smithWatermanScore(unsigned LenA, unsigned LenB,
                          const std::function<double(unsigned, unsigned)> &Score,
                          double GapPenalty);

} // namespace darm

#endif // DARM_CORE_SEQUENCEALIGN_H
