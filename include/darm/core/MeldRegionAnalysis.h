//===- MeldRegionAnalysis.h - Meldable divergent regions -----------*- C++ -*-===//
///
/// \file
/// The analysis half of DARM (§IV-B/C): detection of meldable divergent
/// regions (Definition 5), decomposition of their true/false paths into
/// ordered SESE subgraph chains (Definitions 3/7), structural isomorphism
/// matching, and meld-candidate construction per Definition 6.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_MELDREGIONANALYSIS_H
#define DARM_CORE_MELDREGIONANALYSIS_H

#include "darm/core/DARMConfig.h"

#include <optional>
#include <set>
#include <vector>

namespace darm {

class BasicBlock;
class Value;
class RegionQuery;
class DivergenceAnalysis;
class Function;

/// One SESE subgraph of a divergent path (Definition 3): either a single
/// basic block with one predecessor/successor, or a simple region's body.
struct SESESubgraph {
  BasicBlock *Entry = nullptr;      ///< first block
  BasicBlock *LastBlock = nullptr;  ///< source of the unique exit edge
  BasicBlock *ExitTarget = nullptr; ///< unique successor outside the body
  std::vector<BasicBlock *> Blocks; ///< body in DFS pre-order

  bool isSingleBlock() const { return Blocks.size() == 1; }
  bool contains(const BasicBlock *BB) const;
  /// True if any instruction is convergent (barrier/shfl): such subgraphs
  /// must not be melded (§IV-C deadlock note).
  bool hasConvergentOps() const;
  /// True if the body has no internal back edges.
  bool isAcyclic() const;
  /// Sum of block latencies across the body.
  unsigned totalLatency() const;
};

/// A meldable divergent region (Definition 5) with its two subgraph
/// chains.
struct MeldableRegion {
  BasicBlock *Entry = nullptr; ///< block ending in the divergent branch
  BasicBlock *Exit = nullptr;  ///< region exit X
  Value *Cond = nullptr;       ///< divergent branch condition C
  std::vector<SESESubgraph> TrueChain;
  std::vector<SESESubgraph> FalseChain;
};

/// How a pair of subgraphs can meld (Definition 6).
enum class MeldKind {
  None,
  BlockBlock,   ///< case 3: two single blocks
  RegionRegion, ///< case 1: isomorphic multi-block subgraphs
  BlockRegion   ///< case 2: single block into a region (replication)
};

/// A profitable-to-check pairing of one true-path and one false-path
/// subgraph.
struct MeldCandidate {
  MeldKind Kind = MeldKind::None;
  const SESESubgraph *TrueSG = nullptr;
  const SESESubgraph *FalseSG = nullptr;
  /// Corresponding blocks (true-side, false-side), DFS pre-order. For
  /// BlockRegion the single block pairs with BestMatch and the list has
  /// one entry.
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Mapping;
  /// BlockRegion only: the region-side block the single block melds into.
  BasicBlock *BestMatch = nullptr;
  /// BlockRegion only: true if the single block is on the true path.
  bool SingleIsTrue = false;
  double Profit = 0.0;
};

/// Detects the meldable divergent region whose entry is \p BB, or nullopt.
/// Chains are left empty; call buildChains afterwards (possibly after
/// simplifyRegion). Requires up-to-date analyses.
std::optional<MeldableRegion> detectMeldableRegion(BasicBlock *BB,
                                                   const RegionQuery &RQ,
                                                   const DivergenceAnalysis &DA);

/// Region simplification (Definition 3/4): inserts merge blocks so that
/// every SESE subgraph on both paths has exactly one exit edge. Returns
/// true if the CFG changed (analyses must then be recomputed).
bool simplifyRegion(Function &F, MeldableRegion &MR, const RegionQuery &RQ);

/// Decomposes both divergent paths into SESE subgraph chains. Returns
/// false if a path is too unstructured to decompose (region skipped).
bool buildChains(MeldableRegion &MR, const RegionQuery &RQ);

/// Synchronized-DFS structural isomorphism (Definition 6 case 1); returns
/// the block correspondence in pre-order, or nullopt.
std::optional<std::vector<std::pair<BasicBlock *, BasicBlock *>>>
matchSubgraphStructure(const SESESubgraph &T, const SESESubgraph &F);

/// Classifies a subgraph pair per Definition 6 and computes its melding
/// profitability.
MeldCandidate analyzeMeldability(const SESESubgraph &T, const SESESubgraph &F,
                                 const DARMConfig &Cfg);

/// Aligns the two chains with Smith-Waterman scored by MP_S and returns
/// the candidates whose profitability clears the threshold, in chain
/// order (Definition 7).
std::vector<MeldCandidate> alignChains(const MeldableRegion &MR,
                                       const DARMConfig &Cfg);

} // namespace darm

#endif // DARM_CORE_MELDREGIONANALYSIS_H
