//===- TailMerge.h - Tail merging baseline --------------------------*- C++ -*-===//
///
/// \file
/// The classical tail-merging baseline of Table I [4]: when both arms of
/// an if-then-else are single blocks with *identical* instruction
/// sequences (same opcodes, payloads and operands, modulo the arms' own
/// local definitions), the duplicate arm is deleted and both edges fall
/// through one copy. Unlike DARM it cannot handle distinct instruction
/// sequences (no selects) or multi-block control flow.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_TAILMERGE_H
#define DARM_CORE_TAILMERGE_H

namespace darm {

class Function;

/// Runs tail merging to a fixed point. Returns true on change.
bool runTailMerge(Function &F);

} // namespace darm

#endif // DARM_CORE_TAILMERGE_H
