//===- Profitability.h - Melding profitability (MP_B / MP_S) -------*- C++ -*-===//
///
/// \file
/// The compile-time melding-profitability metric of §IV-C: the estimated
/// fraction of thread cycles saved by melding two blocks or subgraphs,
/// assuming best-case melding of all common instructions.
///
///   MP_B(b1,b2) = Σ_i min(freq(i,b1), freq(i,b2)) · w_i
///                 ────────────────────────────────────
///                        lat(b1) + lat(b2)
///
///   MP_S(S1,S2) = Σ_(b1,b2)∈O MP_B(b1,b2)·(lat(b1)+lat(b2))
///                 ─────────────────────────────────────────
///                        Σ_(b1,b2)∈O lat(b1)+lat(b2)
///
/// Two blocks with identical opcode-frequency profiles score 0.5.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_PROFITABILITY_H
#define DARM_CORE_PROFITABILITY_H

#include <vector>

namespace darm {

class BasicBlock;

/// MP_B of two basic blocks. Instruction "types" are keyed by opcode plus
/// the payload that affects meldability (predicate, address space,
/// intrinsic id), matching areInstructionsCompatible.
double blockMeldProfit(const BasicBlock &B1, const BasicBlock &B2);

/// MP_B refined with melding overhead: cycles saved by the *actual*
/// instruction alignment, minus the select instructions needed where the
/// two sides' operands differ (§IV-C notes the alignment "uses a gap
/// penalty for unaligned instructions because extra branches need to be
/// generated"; operand-mismatch selects are the same class of cost).
/// Negative when melding would insert more code than it removes.
/// \p AbsSaving (optional) receives the absolute saved latency.
double blockMeldProfitWithOverhead(BasicBlock &B1, BasicBlock &B2,
                                   double *AbsSaving = nullptr);

/// MP_S over a block correspondence \p Mapping (pairs of corresponding
/// blocks of two isomorphic subgraphs).
double subgraphMeldProfit(
    const std::vector<std::pair<BasicBlock *, BasicBlock *>> &Mapping);

/// MP_S built from the overhead-aware per-block metric; this is what the
/// pass uses to accept or reject candidates.
double subgraphMeldProfitWithOverhead(
    const std::vector<std::pair<BasicBlock *, BasicBlock *>> &Mapping,
    double *AbsSaving = nullptr);

} // namespace darm

#endif // DARM_CORE_PROFITABILITY_H
