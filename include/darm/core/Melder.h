//===- Melder.h - Subgraph melding code generation ------------------*- C++ -*-===//
///
/// \file
/// The code-generation half of DARM (§IV-D/E/F, Algorithm 2): given a
/// meld candidate inside a divergent region with branch condition C, it
/// clones aligned instructions once, wires operands via the operand map
/// (inserting `select C, vT, vF` where the sides disagree), copies phi
/// nodes, splits the exit branches into the B'T/B'F blocks so successor
/// phis can distinguish the two paths, rewires the region, deletes the
/// original subgraphs, and finally applies unpredication (or full
/// predication with store lowering). Region replication (case 2) steers
/// the single block's lanes through its host position by concretizing the
/// replicated branch conditions.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_MELDER_H
#define DARM_CORE_MELDER_H

#include "darm/core/DARMConfig.h"
#include "darm/core/MeldRegionAnalysis.h"

namespace darm {

class Function;
class Value;

/// Melds one candidate pair. The CFG must be in the state the candidate
/// was computed on. On return the original subgraph blocks are deleted and
/// the function may violate SSA dominance (run repairFunctionSSA before
/// verifying). Returns true on success (currently always succeeds for
/// candidates produced by analyzeMeldability).
bool meldCandidate(Function &F, Value *Cond, const MeldCandidate &Cand,
                   const DARMConfig &Cfg, DARMStats *Stats = nullptr);

} // namespace darm

#endif // DARM_CORE_MELDER_H
