//===- CompiledModule.h - Context-free compiled artifact ---------*- C++ -*-===//
///
/// \file
/// The unit of the compile cache (docs/caching.md): one kernel melded
/// under one DARMConfig, captured as an immutable, Context-free value.
/// Everything inside is plain bytes and counters — no `Value *`, no
/// `Type *`, nothing interned — so an artifact built by one worker's
/// Context can be handed to any other thread and rematerialized into
/// *its* Context (the per-worker-Context rule of support/Parallel.h; the
/// serialized forms are the sanctioned way to cross that boundary).
///
/// An artifact is keyed by (IRHash, Fingerprint):
///
///   IRHash      — artifactIRHash(): FNV-1a/64 of the *input* function's
///                 canonical binary snapshot (ir/Serialize.h
///                 serializeFunction — pure in the function's content, so
///                 equal kernels key equal in any Context or process).
///                 Falls back to the printed-IR hash for functions the
///                 serializer refuses.
///   Fingerprint — a stable string encoding of every DARMConfig field
///                 (configFingerprint): identifies how. Adding a config
///                 field automatically lands in the fingerprint only if
///                 configFingerprint is updated — the unit test counts
///                 fields to force that.
///
/// Payload: the melded module snapshot (ir/Serialize.h bytes), optionally
/// the simulator's DecodedProgram image (a cache hit then skips decode
/// too), and the DARMStats the compile produced. A compile whose verifier
/// failed records CompileError instead; negative results are cached so a
/// broken transform is not re-run per consumer.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_COMPILEDMODULE_H
#define DARM_CORE_COMPILEDMODULE_H

#include "darm/core/DARMConfig.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace darm {

class Context;
class Function;
class Module;
struct DecodedProgram;

/// One compiled kernel as context-free bytes. Immutable after creation
/// (the cache shares artifacts across threads via shared_ptr<const>).
struct CompiledModule {
  /// Content hash of the input function (artifactIRHash).
  uint64_t IRHash = 0;
  /// configFingerprint() of the DARMConfig the compile ran under.
  std::string Fingerprint;

  /// ir/Serialize.h snapshot of the melded module. Empty when the
  /// compile failed (see CompileError).
  std::vector<uint8_t> ModuleBytes;
  /// serializeDecodedProgram() image of the melded kernel, present when
  /// the artifact was built with IncludeProgram. Empty otherwise.
  std::vector<uint8_t> ProgramBytes;

  /// Counters reported by the runDARM() call that produced ModuleBytes.
  DARMStats Stats;

  /// Non-empty when the compile failed (post-meld verifier rejection):
  /// the artifact then carries no module bytes and consumers surface the
  /// message exactly as a direct runDARM() caller would.
  std::string CompileError;

  bool failed() const { return !CompileError.empty(); }

  /// Approximate retained size, the unit of the cache's byte budget.
  size_t byteSize() const {
    return sizeof(CompiledModule) + ModuleBytes.capacity() +
           ProgramBytes.capacity() + Fingerprint.capacity() +
           CompileError.capacity();
  }
};

/// Number of DARMConfig fields encoded by configFingerprint (and by the
/// darmd wire protocol, serve/Protocol.h). This — not sizeof, which
/// bakes ABI padding into the key and silently invalidates every
/// persisted artifact across compilers/platforms — is the tripwire for
/// fields added without extending the encoders: the fingerprint embeds
/// it, decoders reject a mismatch, and the unit test counts its
/// per-field mutations against it. Adding a DARMConfig field means
/// bumping this count and extending configFingerprint,
/// serve/Protocol.h's config codec, and
/// ConfigFingerprint.DistinguishesEveryField together.
inline constexpr unsigned kDARMConfigFieldCount = 14;

/// Stable string encoding of every DARMConfig field, the "how" half of
/// the cache key. Two configs fingerprint equal iff every tunable that
/// can change compile output is equal. Portable: the encoding is pure
/// text over field values (schema tag + kDARMConfigFieldCount + the
/// fields), with no sizeof/ABI dependence, so fingerprints — and
/// therefore on-disk artifact keys — match across compilers and
/// platforms.
std::string configFingerprint(const DARMConfig &Cfg);

/// A compile step the artifact layer can run: mutates the function in
/// place (runDARM, runBranchFusion, a lone pass...) and may accumulate
/// counters into the given DARMStats.
using CompileFn = std::function<void(Function &, DARMStats &)>;

/// The content half of the artifact key: FNV-1a/64 of \p F's canonical
/// binary snapshot (serializeFunction), falling back to the canonical
/// printed form when the snapshot is unavailable. A pure function of the
/// kernel's content — module names and sibling functions do not affect
/// it.
uint64_t artifactIRHash(const Function &F);

/// Compiles \p F under \p Cfg into an artifact. \p F is NOT mutated: the
/// kernel is rematerialized into a private Context (from its canonical
/// binary snapshot), melded there, verified, and snapshotted. With
/// \p IncludeProgram the artifact also carries the DecodedProgram image
/// of the melded kernel. Deterministic: equal inputs produce
/// byte-identical artifacts.
CompiledModule compileToArtifact(const Function &F, const DARMConfig &Cfg,
                                 bool IncludeProgram = true);

/// Generalized form for compiles that are not plain runDARM(Cfg) — the
/// fuzz oracle's named transform configurations, for instance. The
/// caller supplies the "how" half of the key directly: \p Fingerprint
/// must uniquely identify \p Compile's behaviour (the fuzz config name
/// registry guarantees this for its configs).
CompiledModule compileToArtifact(const Function &F,
                                 const std::string &Fingerprint,
                                 const CompileFn &Compile,
                                 bool IncludeProgram = true);

/// Rebuilds the melded module from \p Art inside \p Ctx. Null (with
/// \p Err set) if the artifact failed() or its bytes are malformed.
std::unique_ptr<Module> moduleFromArtifact(const CompiledModule &Art,
                                           Context &Ctx,
                                           std::string *Err = nullptr);

/// Decodes the artifact's DecodedProgram image into \p P. False when the
/// artifact carries no program bytes (or they are malformed) — callers
/// then rebuild via moduleFromArtifact + decodeProgram.
bool decodeFromArtifact(const CompiledModule &Art, DecodedProgram &P);

/// Artifact container format version: the "DRMA" byte encoding of a
/// whole CompiledModule (key, module/program bytes, counters, error) —
/// what the on-disk artifact store persists and the darmd protocol
/// ships. Same version policy as the inner formats (docs/caching.md):
/// bump on any encoding change; readers reject mismatches; caches treat
/// rejects as cold misses.
inline constexpr uint16_t kArtifactFormatVersion = 1;

/// Encodes \p Art as a self-contained "DRMA" byte image, ending in an
/// FNV-1a/64 checksum of the whole image so any single flipped bit is a
/// detected reject. Deterministic in the artifact's value:
/// DARMStats::StageSeconds (host wall-clock timings) are deliberately
/// NOT encoded, so equal compiles serialize to equal bytes no matter
/// where or how fast they ran — the byte-identity contract of the
/// daemon and the on-disk store rests on this.
std::vector<uint8_t> serializeCompiledModule(const CompiledModule &Art);

/// Decodes a "DRMA" image into \p Art. False (with \p Err set) on bad
/// magic/version, checksum mismatch, truncation, or trailing garbage;
/// never reads out of range and never aborts on untrusted bytes. Note
/// this validates the container only — consumers of the inner
/// ModuleBytes/ProgramBytes still go through their own versioned
/// deserializers (the on-disk store does both before serving a warm
/// start).
bool deserializeCompiledModule(const uint8_t *Data, size_t Size,
                               CompiledModule &Art,
                               std::string *Err = nullptr);
inline bool deserializeCompiledModule(const std::vector<uint8_t> &Bytes,
                                      CompiledModule &Art,
                                      std::string *Err = nullptr) {
  return deserializeCompiledModule(Bytes.data(), Bytes.size(), Art, Err);
}

} // namespace darm

#endif // DARM_CORE_COMPILEDMODULE_H
