//===- DARMConfig.h - Pass configuration ---------------------------*- C++ -*-===//
///
/// \file
/// Tunables of the DARM pass. Defaults follow the paper (§V): melding
/// profitability threshold 0.2, unpredication on.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_CORE_DARMCONFIG_H
#define DARM_CORE_DARMCONFIG_H

#include <string>
#include <utility>
#include <vector>

namespace darm {

/// Configuration for runDARM(). The Branch Fusion baseline of the paper's
/// evaluation is DARM restricted to diamond-shaped regions
/// (DiamondOnly = true, EnableRegionReplication = false), exactly how the
/// paper itself implemented it (§VI-A).
struct DARMConfig {
  /// Minimum melding profitability (MP) for a subgraph pair to be melded
  /// (Algorithm 1). Paper default 0.2; Fig. 12 sweeps 0.1-0.5.
  double ProfitThreshold = 0.2;

  /// Gap penalty for the instruction-level Smith-Waterman alignment:
  /// unaligned instructions need guarding branches, so gaps carry cost.
  double InstrGapPenalty = -0.5;

  /// Gap penalty for the subgraph-level alignment.
  double SubgraphGapPenalty = -0.1;

  /// §IV-E unpredication: move unaligned instruction runs into
  /// conditionally executed blocks. When false, unaligned instructions are
  /// fully predicated (stores lowered to load+select+store).
  bool EnableUnpredication = true;

  /// Restrict melding to diamond-shaped if-then-else regions — the Branch
  /// Fusion [5] baseline.
  bool DiamondOnly = false;

  /// §IV-C case 2: basic block vs. region melding via region replication.
  bool EnableRegionReplication = true;

  /// Minimum *absolute* latency saving for a candidate: restructuring a
  /// region has fixed costs (exit-split branches, repair phis), so melds
  /// that save less than this many cycles are skipped even when their
  /// profitability ratio clears the threshold.
  double MinAbsoluteSaving = 2.0;

  /// Fix-point iteration bound for Algorithm 1.
  unsigned MaxIterations = 32;

  /// Verify the function after every melding iteration (debug aid).
  bool VerifyEachStep = true;

  //===--------------------------------------------------------------------===//
  // Mid-end canonicalization (docs/passes.md). Each toggle schedules one
  // classical pass ahead of darm-meld so more regions arrive in a shape
  // the melder recognizes; a cleanup round (algebraic + gvn + dce +
  // simplifycfg) runs after the meld fixed point when any are enabled.
  // All default off: the base pipeline stays byte-for-byte what it was.
  //===--------------------------------------------------------------------===//

  /// Sparse conditional constant propagation: folds constants through
  /// phis, deletes provably-dead branch arms before region detection.
  bool EnableConstProp = false;

  /// Algebraic simplification: identities, strength reduction and local
  /// constant folding, so both diamond arms compute in the same shape.
  bool EnableAlgebraic = false;

  /// Dominator-scoped global value numbering: deduplicates repeated pure
  /// expressions, shrinking the instruction alignment problem.
  bool EnableGVN = false;

  /// Loop-invariant code motion into preheaders: divergent loop bodies
  /// lose their invariant prefix, leaving tighter meld candidates.
  bool EnableLICM = false;

  /// Divergent-loop unrolling: bounded loops whose trip count varies per
  /// lane become branch-divergent straight-line ladders darm-meld can
  /// fuse — the headline widening of this pipeline.
  bool EnableLoopUnroll = false;

  /// Convenience: returns a copy of \p Base with every canonicalization
  /// pass switched on (the "darm-canon" fuzz/claims configuration).
  static DARMConfig withCanonicalization(DARMConfig Base) {
    Base.EnableConstProp = true;
    Base.EnableAlgebraic = true;
    Base.EnableGVN = true;
    Base.EnableLICM = true;
    Base.EnableLoopUnroll = true;
    return Base;
  }
  static DARMConfig withCanonicalization() {
    return withCanonicalization(DARMConfig());
  }

  /// True if any canonicalization pass is enabled.
  bool anyCanonicalization() const {
    return EnableConstProp || EnableAlgebraic || EnableGVN || EnableLICM ||
           EnableLoopUnroll;
  }
};

/// Counters reported by runDARM().
struct DARMStats {
  unsigned Iterations = 0;
  unsigned RegionsMelded = 0;
  unsigned SubgraphPairsMelded = 0;
  unsigned BlockRegionMelds = 0;
  unsigned SelectsInserted = 0;
  unsigned UnpredicationSplits = 0;
  /// Gap stores whose address is side-dependent (depends on
  /// melding-inserted selects or melded phis): these get a real guard
  /// branch instead of the load+select+store predication, in every mode.
  unsigned GuardedStores = 0;

  /// Wall-clock seconds per pipeline stage (simplifycfg, darm-meld,
  /// ssa-repair, dce, verify), summed over all fixed-point iterations and
  /// accumulated (by stage name) across every runDARM()/runBranchFusion()
  /// call that shares this stats object — like the counters above. Empty
  /// if neither driver was used.
  std::vector<std::pair<std::string, double>> StageSeconds;
};

} // namespace darm

#endif // DARM_CORE_DARMCONFIG_H
