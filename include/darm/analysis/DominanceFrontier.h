//===- DominanceFrontier.h - DF and iterated DF ------------------*- C++ -*-===//
///
/// \file
/// Dominance frontiers (Cytron et al.) and iterated dominance frontiers,
/// used for SSA repair (phi placement) and for sync-dependence in the
/// divergence analysis.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_ANALYSIS_DOMINANCEFRONTIER_H
#define DARM_ANALYSIS_DOMINANCEFRONTIER_H

#include <set>
#include <unordered_map>
#include <vector>

namespace darm {

class BasicBlock;
class Function;
class DominatorTree;

/// Dominance frontiers for every reachable block.
class DominanceFrontier {
public:
  DominanceFrontier(Function &F, const DominatorTree &DT);

  /// DF(BB): blocks where BB's dominance ends.
  const std::set<BasicBlock *> &getFrontier(BasicBlock *BB) const;

  /// Iterated dominance frontier of a set of definition blocks: the phi
  /// placement set of classical SSA construction. Returned in the
  /// function's block order — NOT pointer order — so consumers that
  /// create IR while iterating (SSA repair placing phis) do so
  /// deterministically; fresh value numbering must not depend on heap
  /// addresses or the compile cache's byte-identity contract breaks.
  std::vector<BasicBlock *>
  computeIDF(const std::vector<BasicBlock *> &DefBlocks) const;

private:
  std::unordered_map<BasicBlock *, std::set<BasicBlock *>> Frontiers;
  std::unordered_map<BasicBlock *, unsigned> Order; // block -> position in F
  std::set<BasicBlock *> Empty;
};

} // namespace darm

#endif // DARM_ANALYSIS_DOMINANCEFRONTIER_H
