//===- CostModel.h - Instruction latency model --------------------*- C++ -*-===//
///
/// \file
/// Static per-instruction latencies, playing the role of LLVM's cost model
/// in the paper (§V): they weight the melding-profitability metric (§IV-C)
/// and drive the SIMT simulator's timing, so "profitable by the metric"
/// and "faster in simulation" are consistent by construction, mirroring
/// the paper's assumption that the metric approximates saved cycles.
///
/// The table is loosely calibrated to an AMD GCN/Vega-class device: cheap
/// full-rate VALU ops, quarter-rate integer multiply, expensive integer
/// divide, LDS an order of magnitude slower than VALU, global memory an
/// order slower again.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_ANALYSIS_COSTMODEL_H
#define DARM_ANALYSIS_COSTMODEL_H

#include "darm/ir/Instruction.h"

namespace darm {

class BasicBlock;

/// Latency table shared by the profitability metric and the simulator.
class CostModel {
public:
  /// Latency of one dynamic instruction (memory latencies assume a
  /// conflict-free / fully-coalesced access; the simulator adds penalties
  /// for bank conflicts and uncoalesced segments on top).
  static unsigned getLatency(const Instruction *I);

  /// Latency keyed by opcode alone, using \p AS for memory operations.
  static unsigned getLatency(Opcode Op,
                             AddressSpace AS = AddressSpace::Global);

  /// Sum of latencies of all instructions in \p BB — lat(b) in §IV-C.
  static unsigned getBlockLatency(const BasicBlock &BB);

  // Named constants used by the simulator's contention modeling.
  static constexpr unsigned SharedMemLatency = 8;
  static constexpr unsigned GlobalMemLatency = 40;
  /// Extra cycles per additional 128-byte segment of an uncoalesced
  /// global access.
  static constexpr unsigned GlobalSegmentPenalty = 16;
  /// Extra cycles per additional conflicting access to the same LDS bank.
  static constexpr unsigned BankConflictPenalty = 4;
};

} // namespace darm

#endif // DARM_ANALYSIS_COSTMODEL_H
