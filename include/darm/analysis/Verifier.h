//===- Verifier.h - IR well-formedness checks ---------------------*- C++ -*-===//
///
/// \file
/// Structural and SSA verification, run by tests and (in assert builds)
/// after every transformation pass. A failure indicates a compiler bug.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_ANALYSIS_VERIFIER_H
#define DARM_ANALYSIS_VERIFIER_H

#include <string>

namespace darm {

class Function;
class Module;

/// Checks \p F: block/terminator structure, predecessor-successor list
/// consistency, phi placement and pred coverage, operand type rules, and
/// SSA dominance of every use. Returns true if well-formed; otherwise
/// false with a diagnostic in \p Error (if given).
bool verifyFunction(Function &F, std::string *Error = nullptr);

/// Verifies every function in \p M.
bool verifyModule(Module &M, std::string *Error = nullptr);

} // namespace darm

#endif // DARM_ANALYSIS_VERIFIER_H
