//===- RegionQuery.h - SESE region queries ------------------------*- C++ -*-===//
///
/// \file
/// Region queries over a CFG snapshot, following the paper's Definitions
/// 1-4 (§IV-A): a *region* (E, X) has all its blocks dominated by E and
/// post-dominated by X, with control entering only at E and leaving only
/// to X. A *simple* region additionally has exactly one entry edge and one
/// exit edge. Unlike LLVM's RegionInfo we do not materialize a program
/// structure tree; the melding pass only needs point queries, which we
/// answer directly (and verifiably) from the CFG.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_ANALYSIS_REGIONQUERY_H
#define DARM_ANALYSIS_REGIONQUERY_H

#include <set>
#include <vector>

namespace darm {

class BasicBlock;
class Function;
class DominatorTree;
class PostDominatorTree;

/// A region denoted (Entry, Exit); Exit is *outside* the region, as in
/// LLVM. Invalid regions have null blocks.
struct RegionDesc {
  BasicBlock *Entry = nullptr;
  BasicBlock *Exit = nullptr;

  bool isValid() const { return Entry && Exit; }
};

/// Point queries about SESE regions. Holds references to dominator trees;
/// recompute after any CFG mutation.
class RegionQuery {
public:
  RegionQuery(Function &F, const DominatorTree &DT,
              const PostDominatorTree &PDT)
      : F(F), DT(DT), PDT(PDT) {}

  /// Blocks reachable from \p Entry without passing through \p Exit
  /// (excluding Exit). This is the region body when (Entry, Exit) is a
  /// region.
  std::set<BasicBlock *> collectBlocks(BasicBlock *Entry,
                                       BasicBlock *Exit) const;

  /// True if (Entry, Exit) satisfies the region conditions: the only edges
  /// from outside the body target Entry, and the only edges leaving the
  /// body target Exit.
  bool isRegion(BasicBlock *Entry, BasicBlock *Exit) const;

  /// True if (Entry, Exit) is a region with exactly one entry edge and one
  /// exit edge (Definition 1, "simple region").
  bool isSimpleRegion(BasicBlock *Entry, BasicBlock *Exit) const;

  /// The smallest region with entry \p Entry: scans up Entry's
  /// post-dominator chain for the nearest exit candidate that forms a
  /// region. Returns an invalid descriptor if none exists.
  RegionDesc getSmallestRegion(BasicBlock *Entry) const;

  /// The largest region with entry \p Entry whose body stays inside
  /// \p Within (a block set) and whose exit is not \p Barrier: used to
  /// carve maximal SESE subgraphs out of a divergent region. Returns an
  /// invalid descriptor if none exists.
  RegionDesc getLargestRegionWithin(BasicBlock *Entry,
                                    const std::set<BasicBlock *> &Within,
                                    BasicBlock *Barrier) const;

  /// Number of CFG edges from outside the body into \p Entry.
  unsigned countEntryEdges(BasicBlock *Entry, BasicBlock *Exit) const;
  /// Number of CFG edges from the body into \p Exit.
  unsigned countExitEdges(BasicBlock *Entry, BasicBlock *Exit) const;

  const DominatorTree &getDomTree() const { return DT; }
  const PostDominatorTree &getPostDomTree() const { return PDT; }

private:
  Function &F;
  const DominatorTree &DT;
  const PostDominatorTree &PDT;
};

} // namespace darm

#endif // DARM_ANALYSIS_REGIONQUERY_H
