//===- LoopInfo.h - Natural loop detection ------------------------*- C++ -*-===//
///
/// \file
/// Natural loops discovered from back edges (edges whose target dominates
/// their source). Loops sharing a header are merged; nesting is derived
/// from block containment.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_ANALYSIS_LOOPINFO_H
#define DARM_ANALYSIS_LOOPINFO_H

#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

namespace darm {

class BasicBlock;
class Function;
class DominatorTree;

/// One natural loop.
class Loop {
public:
  BasicBlock *getHeader() const { return Header; }
  Loop *getParent() const { return Parent; }
  const std::set<BasicBlock *> &blocks() const { return Blocks; }
  bool contains(const BasicBlock *BB) const {
    return Blocks.count(const_cast<BasicBlock *>(BB)) != 0;
  }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }
  /// Loop nesting depth; outermost loops have depth 1.
  unsigned getDepth() const {
    unsigned D = 1;
    for (Loop *P = Parent; P; P = P->Parent)
      ++D;
    return D;
  }
  /// Blocks inside the loop that branch back to the header.
  std::vector<BasicBlock *> getLatches() const;
  /// The loop preheader: the unique out-of-loop predecessor of the
  /// header, provided the header is its only successor (so code inserted
  /// there runs exactly once before the loop, on every entry). Null when
  /// the loop has several entry predecessors or the entry edge is
  /// critical. LICM and the unroller require one.
  BasicBlock *getPreheader() const;

private:
  friend class LoopInfo;
  BasicBlock *Header = nullptr;
  Loop *Parent = nullptr;
  std::set<BasicBlock *> Blocks;
  std::vector<Loop *> SubLoops;
};

/// All natural loops of a function.
class LoopInfo {
public:
  LoopInfo(Function &F, const DominatorTree &DT);

  /// Innermost loop containing \p BB, or null.
  Loop *getLoopFor(const BasicBlock *BB) const;
  unsigned getLoopDepth(const BasicBlock *BB) const {
    Loop *L = getLoopFor(BB);
    return L ? L->getDepth() : 0;
  }
  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }
  /// Outermost loops only.
  std::vector<Loop *> topLevelLoops() const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::unordered_map<const BasicBlock *, Loop *> BlockMap;
};

} // namespace darm

#endif // DARM_ANALYSIS_LOOPINFO_H
