//===- DominatorTree.h - (Post)dominator trees --------------------*- C++ -*-===//
///
/// \file
/// Dominator and post-dominator trees computed with the iterative
/// Cooper-Harvey-Kennedy algorithm ("A Simple, Fast Dominance Algorithm").
/// One generic implementation serves both directions; the post-dominator
/// tree uses a virtual root above all exit blocks, so functions with
/// multiple returns are handled.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_ANALYSIS_DOMINATORTREE_H
#define DARM_ANALYSIS_DOMINATORTREE_H

#include <unordered_map>
#include <vector>

namespace darm {

class BasicBlock;
class Function;
class Instruction;

/// Base for both tree directions. Immutable snapshot: recompute after CFG
/// mutation.
class DominatorTreeBase {
public:
  DominatorTreeBase(Function &F, bool IsPostDom);

  bool isPostDominator() const { return IsPostDom; }

  /// True if \p BB participates in the CFG walked from the root(s).
  /// (For post-dominance, blocks that cannot reach an exit are excluded.)
  bool isReachable(const BasicBlock *BB) const {
    return Index.count(const_cast<BasicBlock *>(BB)) != 0;
  }

  /// Immediate dominator, or null for the root (entry block, or an exit
  /// block whose post-idom is the virtual root).
  BasicBlock *getIDom(const BasicBlock *BB) const;

  /// Reflexive dominance: A dom A.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;
  bool properlyDominates(const BasicBlock *A, const BasicBlock *B) const {
    return A != B && dominates(A, B);
  }

  /// Instruction-level dominance (forward trees only): does the value
  /// defined by \p Def dominate the program point of \p User?
  bool dominates(const Instruction *Def, const Instruction *User) const;

  /// Nearest common (post)dominator; null if it is the virtual root.
  BasicBlock *findNearestCommonDominator(BasicBlock *A, BasicBlock *B) const;

  /// Depth of \p BB below the (virtual) root; root children are level 1.
  unsigned getLevel(const BasicBlock *BB) const;

  /// Children of \p BB in the dominator tree.
  std::vector<BasicBlock *> getChildren(const BasicBlock *BB) const;

  /// All blocks in this tree, in the traversal's reverse post-order.
  const std::vector<BasicBlock *> &getBlocksRPO() const { return RPO; }

private:
  unsigned indexOf(const BasicBlock *BB) const;
  /// CHK intersect over RPO indices; kVirtualRoot flows up naturally.
  unsigned intersect(unsigned A, unsigned B) const;

  static constexpr unsigned kVirtualRoot = ~0u;

  bool IsPostDom;
  std::vector<BasicBlock *> RPO; // index -> block, in reverse post-order
  std::unordered_map<BasicBlock *, unsigned> Index;
  std::vector<unsigned> IDoms;  // index -> idom index (kVirtualRoot at top)
  std::vector<unsigned> Levels; // index -> tree depth
};

/// Forward dominance rooted at the entry block.
class DominatorTree : public DominatorTreeBase {
public:
  explicit DominatorTree(Function &F) : DominatorTreeBase(F, false) {}
};

/// Post-dominance rooted at a virtual exit above all return blocks.
class PostDominatorTree : public DominatorTreeBase {
public:
  explicit PostDominatorTree(Function &F) : DominatorTreeBase(F, true) {}
};

} // namespace darm

#endif // DARM_ANALYSIS_DOMINATORTREE_H
