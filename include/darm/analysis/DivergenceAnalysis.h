//===- DivergenceAnalysis.h - SIMT divergence analysis -------------*- C++ -*-===//
///
/// \file
/// Divergence analysis in the style of Karrenberg & Hack (the analysis
/// LLVM ships and the paper relies on, §II-B): a value is divergent if
/// different lanes of a warp may hold different values. Seeds are the
/// thread-index intrinsics; divergence propagates along data dependences,
/// and along *sync dependences*: a divergent terminator taints the phi
/// nodes of the join blocks where its disjoint paths merge (the iterated
/// dominance frontier of its successors).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_ANALYSIS_DIVERGENCEANALYSIS_H
#define DARM_ANALYSIS_DIVERGENCEANALYSIS_H

#include <set>

namespace darm {

class Function;
class Value;
class BasicBlock;
class Instruction;
class DominatorTree;
class DominanceFrontier;

/// Which values seed the divergent set.
enum class DivergenceSeeds {
  /// The thread-identity intrinsics (tid.x, laneid) only — the static
  /// notion the melder's region analysis and profitability model use:
  /// "may different lanes hold different values, as a function of which
  /// lane they are".
  ThreadIdentity,
  /// ThreadIdentity plus every load and shfl.sync. Loads and shuffles
  /// can vary with *when* a lane executes them, not just which lane it
  /// is: under divergent control, lanes reach a (uniform-addressed) load
  /// in separate serialized passes between which memory or inactive-lane
  /// registers may have changed. A value uniform under this policy is a
  /// time-invariant function of launch-constant inputs, so every lane
  /// that ever executes its definition computes the same bits — the
  /// guarantee the simulator's uniform-warp fast path needs before it
  /// reads a branch condition from a single lane (docs/performance.md).
  ExecutionTime,
};

/// Computes and caches per-value divergence for one function.
class DivergenceAnalysis {
public:
  DivergenceAnalysis(Function &F, const DominatorTree &DT,
                     const DominanceFrontier &DF,
                     DivergenceSeeds Seeds = DivergenceSeeds::ThreadIdentity);

  /// True if lanes of a warp may disagree on \p V.
  bool isDivergent(const Value *V) const {
    return Divergent.count(const_cast<Value *>(V)) != 0;
  }

  /// True if \p BB ends in a conditional branch on a divergent condition.
  bool hasDivergentBranch(const BasicBlock *BB) const;

  /// Number of divergent conditional branches in the function.
  unsigned countDivergentBranches() const;

private:
  void markDivergent(Value *V, std::set<Value *> &Worklist);

  Function &F;
  const DominatorTree &DT;
  const DominanceFrontier &DF;
  std::set<Value *> Divergent;
};

} // namespace darm

#endif // DARM_ANALYSIS_DIVERGENCEANALYSIS_H
