//===- LoopHelper.h - Structured loop construction ------------------*- C++ -*-===//
///
/// \file
/// Helper for building SSA `for` loops with IRBuilder. Kernels use it to
/// express the nested uniform loops that surround their divergent regions
/// (e.g. the k/j loops of bitonic sort, Fig. 1).
///
//===----------------------------------------------------------------------===//
#ifndef DARM_KERNELS_LOOPHELPER_H
#define DARM_KERNELS_LOOPHELPER_H

#include "darm/ir/IRBuilder.h"

#include <string>

namespace darm {

/// Builds `for (iv = Init; icmp(Pred, iv, Bound); iv = <Next>) body`.
/// After construction the builder is positioned inside the body; call
/// close(Next) when the body is done — the builder then continues in the
/// loop exit block.
class ForLoop {
public:
  ForLoop(IRBuilder &B, Value *Init, ICmpPred Pred, Value *Bound,
          const std::string &Name)
      : B(B) {
    Function *F = B.getInsertBlock()->getParent();
    Preheader = B.getInsertBlock();
    Header = F->createBlock(Name + ".header");
    Body = F->createBlock(Name + ".body");
    Exit = F->createBlock(Name + ".exit");

    B.createBr(Header);
    B.setInsertPoint(Header);
    IV = B.createPhi(B.getContext().getInt32Ty(), Name);
    IV->addIncoming(Init, Preheader);
    Value *Cond = B.createICmp(Pred, IV, Bound, Name + ".cond");
    B.createCondBr(Cond, Body, Exit);
    B.setInsertPoint(Body);
  }

  /// The induction variable, usable inside the body.
  Value *iv() const { return IV; }

  /// Terminates the body: branch back to the header with \p Next as the
  /// next induction value. The builder continues in the exit block.
  void close(Value *Next) {
    BasicBlock *Latch = B.getInsertBlock();
    B.createBr(Header);
    IV->addIncoming(Next, Latch);
    B.setInsertPoint(Exit);
  }

  BasicBlock *exitBlock() const { return Exit; }

private:
  IRBuilder &B;
  BasicBlock *Preheader, *Header, *Body, *Exit;
  PhiInst *IV;
};

} // namespace darm

#endif // DARM_KERNELS_LOOPHELPER_H
