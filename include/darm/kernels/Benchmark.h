//===- Benchmark.h - Workload registry ------------------------------*- C++ -*-===//
///
/// \file
/// The benchmark suite of the paper's evaluation (§VI-A): seven real-world
/// kernels (BIT, PCM, MS, LUD, NQU, SRAD, DCT) and the synthetic patterns
/// SB1-SB4 with their -R variants (Fig. 7). Each benchmark builds its
/// kernel IR for a given block size, prepares inputs, declares the launch
/// geometry, and validates the simulated results against an independent
/// host (CPU) reference.
///
//===----------------------------------------------------------------------===//
#ifndef DARM_KERNELS_BENCHMARK_H
#define DARM_KERNELS_BENCHMARK_H

#include "darm/sim/GpuConfig.h"
#include "darm/sim/Memory.h"

#include <memory>
#include <string>
#include <vector>

namespace darm {

class Function;
class Module;
class SimEngine;

/// One benchmark instance (kernel + workload) at a fixed block size.
class Benchmark {
public:
  virtual ~Benchmark() = default;

  /// Short name, e.g. "BIT" or "SB2R".
  virtual std::string name() const = 0;

  /// Builds the kernel IR into \p M.
  virtual Function *build(Module &M) const = 0;

  virtual LaunchParams launch() const = 0;

  /// Allocates and fills input/output buffers; returns the argument list
  /// for the first launch.
  virtual std::vector<uint64_t> setup(GlobalMemory &Mem) const = 0;

  /// Kernels that need several dependent launches (e.g. merge-sort
  /// passes) override this; launch \p I uses argsForLaunch(I, base).
  virtual unsigned numLaunches() const { return 1; }
  virtual std::vector<uint64_t>
  argsForLaunch(unsigned I, const std::vector<uint64_t> &Base) const {
    (void)I;
    return Base;
  }

  /// Checks the simulated output against the host reference.
  virtual bool validate(const GlobalMemory &Mem,
                        const std::vector<uint64_t> &BaseArgs,
                        std::string *Why = nullptr) const = 0;
};

/// Real-world benchmark names in paper order.
std::vector<std::string> realBenchmarkNames();
/// Synthetic benchmark names (SB1..SB4, SB1R..SB4R).
std::vector<std::string> syntheticBenchmarkNames();
/// Paper block sizes for a benchmark (Fig. 8/9 x-axis).
std::vector<unsigned> paperBlockSizes(const std::string &Name);

/// Factory. Returns null for unknown names. \p BlockSize must be a
/// multiple of the warp size for the real kernels (16 allowed for LUD and
/// SRAD, matching the paper).
std::unique_ptr<Benchmark> createBenchmark(const std::string &Name,
                                           unsigned BlockSize);

/// Everything one simulated benchmark run observes: aggregate counters,
/// per-launch stats snapshots (multi-launch benchmarks accumulate state
/// across launches, so the per-launch counters differ launch to launch;
/// they always sum to Total — pinned by claims_test), the final
/// memory-image fingerprint, and the host-reference verdict.
struct BenchRun {
  SimStats Total;
  std::vector<SimStats> PerLaunch;
  uint64_t MemHash = 0;
  bool Valid = false;
  std::string Why; ///< first validation failure, when !Valid
};

/// Runs every launch of \p B against \p Kern (which the caller may have
/// transformed), validates against the host reference, and fingerprints
/// the final memory image.
BenchRun runBenchmark(const Benchmark &B, Function &Kern);

/// Same run over an already-constructed engine — the compile-cache path
/// hands in a SimEngine adopting a deserialized DecodedProgram image
/// (docs/caching.md) instead of decoding \p Kern afresh. The engine must
/// have been built with the default GpuConfig to match the Function
/// overload byte for byte.
BenchRun runBenchmark(const Benchmark &B, SimEngine &Engine);

/// Compatibility wrapper over runBenchmark: aggregated stats out; returns
/// validation success.
bool runAndValidate(const Benchmark &B, Function &Kern, SimStats &Stats,
                    std::string *Why = nullptr);

/// FNV-1a 64 hash over a whole final global-memory image; the cheap
/// bit-identity fingerprint used by golden rows and the claims oracle.
uint64_t hashMemoryImage(const GlobalMemory &Mem);

} // namespace darm

#endif // DARM_KERNELS_BENCHMARK_H
