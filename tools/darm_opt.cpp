//===- darm_opt.cpp - opt-style driver over textual IR -----------------------------===//
//
// Reads a kernel in the textual IR syntax, runs the requested pass
// pipeline, and prints the result (IR or Graphviz DOT). The closest thing
// to `opt -darm` the paper's artifact exposes.
//
//   darm_opt [passes...] [options] file.ir
//     -passes=a,b,c    run a comma-separated sequence of registry passes
//                      (docs/passes.md); -list-passes prints the names
//     -darm            control-flow melding (the paper's pass)
//     -branch-fusion   diamond-only melding baseline
//     -tailmerge       tail merging baseline
//     -simplifycfg     CFG cleanup
//     -dce             dead code elimination
//     -threshold=<f>   melding profitability threshold (default 0.2)
//     -dot             print the CFG in DOT instead of IR
//     -stats           print melding statistics to stderr
//     -cache           run the pipeline through the compile-artifact path
//                      (core/CompileService.h, docs/caching.md): each
//                      function is compiled into a context-free artifact
//                      and the *deserialized* snapshot is printed — output
//                      must be byte-identical to the direct path
//     -cache-stats     print a CACHE summary line to stderr
//     -quiet           suppress the IR output (smoke tests, -stats runs)
//
// Single-pass flags (-simplifycfg et al.) are sugar for the same names in
// -passes=; both forms append to one ordered pipeline.
//
//===----------------------------------------------------------------------===//

#include "darm/analysis/Verifier.h"
#include "darm/core/CompileService.h"
#include "darm/core/DARMPass.h"
#include "darm/core/TailMerge.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/transform/DCE.h"
#include "darm/transform/PassManager.h"
#include "darm/transform/Passes.h"
#include "darm/transform/SimplifyCFG.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace darm;

namespace {

void splitPassList(const std::string &List, std::vector<std::string> &Out) {
  std::stringstream SS(List);
  std::string Name;
  while (std::getline(SS, Name, ','))
    if (!Name.empty())
      Out.push_back(Name);
}

int listPasses() {
  std::printf("registry passes (run in the order given to -passes=):\n");
  for (const PassInfo &P : transformPassRegistry())
    std::printf("  %-12s %s\n", P.Name.c_str(), P.Description.c_str());
  std::printf("pipelines:\n"
              "  %-12s the full DARM melding pipeline (runDARM)\n"
              "  %-12s the diamond-only Branch Fusion baseline\n"
              "  %-12s the tail merging baseline\n",
              "darm", "branch-fusion", "tailmerge");
  return 0;
}

/// Merges one compile's counters into the invocation-wide stats the same
/// way a shared stats object accumulates in the direct path.
void accumulateStats(DARMStats &DS, const DARMStats &S) {
  DS.Iterations += S.Iterations;
  DS.RegionsMelded += S.RegionsMelded;
  DS.SubgraphPairsMelded += S.SubgraphPairsMelded;
  DS.BlockRegionMelds += S.BlockRegionMelds;
  DS.SelectsInserted += S.SelectsInserted;
  DS.UnpredicationSplits += S.UnpredicationSplits;
  DS.GuardedStores += S.GuardedStores;
  for (const auto &[Stage, Secs] : S.StageSeconds) {
    bool Found = false;
    for (auto &[Name, Total] : DS.StageSeconds)
      if (Name == Stage) {
        Total += Secs;
        Found = true;
        break;
      }
    if (!Found)
      DS.StageSeconds.emplace_back(Stage, Secs);
  }
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Passes;
  std::string InputFile;
  bool EmitDot = false, Stats = false, Quiet = false;
  bool UseCache = false, CacheStats = false;
  double Threshold = 0.2;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-darm" || Arg == "-branch-fusion" || Arg == "-tailmerge" ||
        Arg == "-simplifycfg" || Arg == "-dce") {
      Passes.push_back(Arg.substr(1));
    } else if (Arg.rfind("-passes=", 0) == 0) {
      splitPassList(Arg.substr(std::strlen("-passes=")), Passes);
    } else if (Arg.rfind("--passes=", 0) == 0) {
      splitPassList(Arg.substr(std::strlen("--passes=")), Passes);
    } else if (Arg == "-list-passes" || Arg == "--list-passes") {
      return listPasses();
    } else if (Arg.rfind("-threshold=", 0) == 0) {
      Threshold = std::atof(Arg.c_str() + 11);
    } else if (Arg == "-dot") {
      EmitDot = true;
    } else if (Arg == "-stats") {
      Stats = true;
    } else if (Arg == "-cache" || Arg == "--cache") {
      UseCache = true;
    } else if (Arg == "-cache-stats" || Arg == "--cache-stats") {
      CacheStats = true;
    } else if (Arg == "-quiet" || Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "-help" || Arg == "--help") {
      std::printf("usage: %s [passes...] [options] file.ir\n", argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    } else {
      InputFile = Arg;
    }
  }
  if (InputFile.empty()) {
    std::fprintf(stderr, "no input file; try -help\n");
    return 1;
  }

  std::ifstream In(InputFile);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", InputFile.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx, Buf.str(), &Err);
  if (!M) {
    std::fprintf(stderr, "%s: parse error: %s\n", InputFile.c_str(),
                 Err.c_str());
    return 1;
  }
  if (!verifyModule(*M, &Err)) {
    std::fprintf(stderr, "%s: invalid IR: %s\n", InputFile.c_str(),
                 Err.c_str());
    return 1;
  }

  // Pass names validate up front so both execution paths reject an
  // unknown name before any compilation happens.
  for (const std::string &P : Passes) {
    if (P != "darm" && P != "branch-fusion" && P != "tailmerge" &&
        !findTransformPass(P)) {
      std::fprintf(stderr, "unknown pass '%s'; -list-passes shows the names\n",
                   P.c_str());
      return 1;
    }
  }

  // One pipeline definition for both paths: the direct path binds it to
  // a shared PassManager, the cached path replays it inside each
  // artifact compile. Identical pass sequence, identical output.
  auto addPasses = [&Passes, Threshold](PassManager &PM, DARMStats &DS) {
    for (const std::string &P : Passes) {
      if (P == "darm") {
        DARMConfig Cfg;
        Cfg.ProfitThreshold = Threshold;
        PM.addPass("darm",
                   [Cfg, &DS](Function &F) { return runDARM(F, Cfg, &DS); });
      } else if (P == "branch-fusion") {
        PM.addPass("branch-fusion",
                   [&DS](Function &F) { return runBranchFusion(F, &DS); });
      } else if (P == "tailmerge") {
        PM.addPass("tailmerge", [](Function &F) { return runTailMerge(F); });
      } else {
        const PassInfo *Reg = findTransformPass(P);
        PM.addPass(Reg->Name, Reg->Run);
      }
    }
  };

  DARMStats DS;
  PassManager PM(/*VerifyEach=*/true);
  CompileService Cache;
  // Cached mode rematerializes each function's artifact into its own
  // Context; results are printed from these instead of M.
  std::vector<std::unique_ptr<Context>> ArtContexts;
  std::vector<std::unique_ptr<Module>> ArtModules;
  if (UseCache) {
    // The "how" half of the cache key: the exact pass sequence plus the
    // one tunable that changes what the sequence does.
    std::string FP = "darm-opt-v1;threshold=" + std::to_string(Threshold);
    for (const std::string &P : Passes)
      FP += ";" + P;
    for (const auto &F : M->functions()) {
      CompileService::Artifact Art = Cache.getOrCompile(
          *F, FP,
          [&addPasses](Function &K, DARMStats &S) {
            PassManager KPM(/*VerifyEach=*/true);
            addPasses(KPM, S);
            KPM.run(K);
          },
          /*IncludeProgram=*/false);
      if (Art->failed()) {
        std::fprintf(stderr, "%s: %s: compile failed: %s\n",
                     InputFile.c_str(), F->getName().c_str(),
                     Art->CompileError.c_str());
        return 1;
      }
      accumulateStats(DS, Art->Stats);
      auto ArtCtx = std::make_unique<Context>();
      std::string DErr;
      auto AM = moduleFromArtifact(*Art, *ArtCtx, &DErr);
      if (!AM) {
        std::fprintf(stderr, "%s: %s: artifact decode failed: %s\n",
                     InputFile.c_str(), F->getName().c_str(), DErr.c_str());
        return 1;
      }
      ArtContexts.push_back(std::move(ArtCtx));
      ArtModules.push_back(std::move(AM));
    }
  } else {
    addPasses(PM, DS);
    for (const auto &F : M->functions())
      PM.run(*F);
  }

  if (CacheStats) {
    const CompileService::CacheStats CS = Cache.stats();
    std::fprintf(stderr,
                 "CACHE entries=%llu bytes=%llu hits=%llu misses=%llu "
                 "upgrades=%llu disk_hits=%llu oversized=%llu "
                 "evictions=%llu duplicate_compiles=%llu hit_rate=%.4f\n",
                 static_cast<unsigned long long>(CS.Entries),
                 static_cast<unsigned long long>(CS.Bytes),
                 static_cast<unsigned long long>(CS.Hits),
                 static_cast<unsigned long long>(CS.Misses),
                 static_cast<unsigned long long>(CS.Upgrades),
                 static_cast<unsigned long long>(CS.DiskHits),
                 static_cast<unsigned long long>(CS.Oversized),
                 static_cast<unsigned long long>(CS.Evictions),
                 static_cast<unsigned long long>(CS.DuplicateCompiles),
                 CS.hitRate());
  }

  if (Stats) {
    std::fprintf(stderr,
                 "melding: %u region(s), %u subgraph pair(s), %u "
                 "block-region meld(s), %u select(s), %u unpredication "
                 "split(s), %u guarded store(s)\n",
                 DS.RegionsMelded, DS.SubgraphPairsMelded,
                 DS.BlockRegionMelds, DS.SelectsInserted,
                 DS.UnpredicationSplits, DS.GuardedStores);
    for (const auto &[Name, Secs] : PM.cumulativeTimings())
      std::fprintf(stderr, "  %-14s %8.3f ms\n", Name.c_str(), Secs * 1e3);
    // The darm/branch-fusion passes run a nested fixed-point pipeline;
    // break their time down by stage. Like the counters above, these sum
    // over all functions and over both melding passes when both ran.
    for (const auto &[Stage, Secs] : DS.StageSeconds)
      std::fprintf(stderr, "    meld.%-10s %8.3f ms\n", Stage.c_str(),
                   Secs * 1e3);
  }

  // Cached output prints the deserialized snapshots. printModule is a
  // plain concatenation of per-function prints, so the bytes match the
  // direct path exactly — the cache-coherence CI step diffs the two.
  if (EmitDot) {
    if (UseCache) {
      for (const auto &AM : ArtModules)
        for (const auto &F : AM->functions())
          std::printf("%s", printDot(*F).c_str());
    } else {
      for (const auto &F : M->functions())
        std::printf("%s", printDot(*F).c_str());
    }
  } else if (!Quiet) {
    if (UseCache) {
      for (const auto &AM : ArtModules)
        std::printf("%s", printModule(*AM).c_str());
    } else {
      std::printf("%s", printModule(*M).c_str());
    }
  }
  return 0;
}
