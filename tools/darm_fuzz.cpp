//===- darm_fuzz.cpp - Differential fuzzing driver ------------------------------===//
//
// Front-end over src/fuzz (docs/fuzzing.md): sweeps seeds through the
// differential oracle, writes minimized .darm repros for mismatches, and
// re-runs previously written repros.
//
//   darm_fuzz --seed-range 0:1000            sweep seeds [0, 1000)
//   darm_fuzz --seed 42                      one seed
//   darm_fuzz --repro fuzz42.darm            re-check a written repro
//   darm_fuzz --dump 42                      print the generated kernel
//     --jobs N         in-process worker threads (default: hardware
//                      concurrency; --jobs 1 is exactly the sequential
//                      sweep, and any N reports byte-identical findings)
//     --shards N:i     sweep only seeds with seed % N == i (process-level
//                      parallelism for the nightly budget)
//     --out DIR        where to write repros (default ".")
//     --configs a,b    run only the named transform axes
//     --no-roundtrip   skip the print->parse axis
//     --no-serialize   skip the binary serialize->deserialize axis
//                      (docs/caching.md)
//     --no-minimize    report un-minimized repros
//     --no-claims      skip the SimStats plausibility axis (docs/claims.md)
//     --cache          compile transform axes through an in-process
//                      CompileService; verdicts stay byte-identical at
//                      any cache state (docs/caching.md)
//     --cache-stats    print a CACHE summary line after the sweep
//     --max-failures N stop after N mismatches (default 8)
//     --quiet          no per-seed progress
//
// Exit status: 0 all clean, 1 mismatches found, 2 usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "darm/core/CompileService.h"
#include "darm/fuzz/DiffOracle.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRParser.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/support/Parallel.h"
#include "darm/support/Shards.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace darm;
using namespace darm::fuzz;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s (--seed-range A:B | --seed S | --repro FILE | "
               "--dump S) [--jobs N] [--shards N:i] [--out DIR] "
               "[--configs a,b] [--no-roundtrip] [--no-serialize] "
               "[--no-minimize] [--no-claims] [--cache] [--cache-stats] "
               "[--max-failures N] [--quiet]\n",
               Argv0);
  return 2;
}

int runRepro(const std::string &Path, const OracleOptions &Opts) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  FuzzCase C;
  std::string Config;
  if (!parseReproHeader(Text, C, Config)) {
    std::fprintf(stderr, "%s: malformed darm-fuzz repro header\n",
                 Path.c_str());
    return 2;
  }
  Context Ctx;
  std::string Err;
  auto M = parseModule(Ctx, Text, &Err);
  if (!M || M->functions().empty()) {
    std::fprintf(stderr, "%s: parse error: %s\n", Path.c_str(), Err.c_str());
    return 2;
  }
  OracleResult R =
      checkRepro(*M->functions().front(), C, Config, Opts);
  if (R.Mismatch) {
    std::printf("REPRODUCED seed %llu config %s: %s\n",
                static_cast<unsigned long long>(C.Seed), R.Config.c_str(),
                R.Detail.c_str());
    return 1;
  }
  std::printf("repro no longer fails (seed %llu, config %s)\n",
              static_cast<unsigned long long>(C.Seed), Config.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Lo = 0, Hi = 0;
  bool HaveRange = false;
  int64_t DumpSeed = -1;
  std::string ReproPath, OutDir = ".";
  std::vector<std::string> ConfigNames;
  OracleOptions Opts;
  unsigned MaxFailures = 8;
  unsigned Shards = 1, ShardIdx = 0;
  unsigned Jobs = hardwareParallelism();
  bool Quiet = false;
  bool UseCache = false;
  bool CacheStats = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextVal = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--seed-range") {
      const char *V = NextVal("--seed-range");
      if (!V)
        return 2;
      if (!darm::parseSeedRange(V, Lo, Hi)) {
        std::fprintf(stderr, "--seed-range expects LO:HI with HI > LO\n");
        return 2;
      }
      HaveRange = true;
    } else if (Arg == "--seed") {
      const char *V = NextVal("--seed");
      if (!V)
        return 2;
      Lo = std::strtoull(V, nullptr, 10);
      Hi = Lo + 1;
      HaveRange = true;
    } else if (Arg == "--dump") {
      const char *V = NextVal("--dump");
      if (!V)
        return 2;
      DumpSeed = static_cast<int64_t>(std::strtoull(V, nullptr, 10));
    } else if (Arg == "--repro") {
      const char *V = NextVal("--repro");
      if (!V)
        return 2;
      ReproPath = V;
    } else if (Arg == "--out") {
      const char *V = NextVal("--out");
      if (!V)
        return 2;
      OutDir = V;
    } else if (Arg == "--configs") {
      const char *V = NextVal("--configs");
      if (!V)
        return 2;
      ConfigNames = splitList(V);
    } else if (Arg == "--shards") {
      const char *V = NextVal("--shards");
      if (!V)
        return 2;
      if (!darm::parseShardSpec(V, Shards, ShardIdx)) {
        std::fprintf(stderr, "--shards expects N:i with 0 <= i < N\n");
        return 2;
      }
    } else if (Arg == "--jobs") {
      const char *V = NextVal("--jobs");
      if (!V)
        return 2;
      if (!darm::parseJobs(V, Jobs)) {
        std::fprintf(stderr, "--jobs expects a positive integer\n");
        return 2;
      }
    } else if (Arg == "--no-roundtrip") {
      Opts.RoundTrip = false;
    } else if (Arg == "--no-serialize") {
      Opts.Serialize = false;
    } else if (Arg == "--cache") {
      UseCache = true;
    } else if (Arg == "--cache-stats") {
      CacheStats = true;
    } else if (Arg == "--no-minimize") {
      Opts.Minimize = false;
    } else if (Arg == "--no-claims") {
      Opts.Claims = false;
    } else if (Arg == "--max-failures") {
      const char *V = NextVal("--max-failures");
      if (!V)
        return 2;
      MaxFailures = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "-help" || Arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return usage(argv[0]);
    }
  }

  if (!ReproPath.empty())
    return runRepro(ReproPath, Opts);

  if (DumpSeed >= 0) {
    Context Ctx;
    Module M(Ctx, "dump");
    FuzzCase C(static_cast<uint64_t>(DumpSeed));
    std::printf("%s", printFunction(*buildFuzzKernel(M, C)).c_str());
    return 0;
  }

  if (!HaveRange || Hi <= Lo)
    return usage(argv[0]);

  if (!ConfigNames.empty()) {
    for (const OracleConfig &Cfg : defaultConfigs())
      for (const std::string &N : ConfigNames)
        if (Cfg.Name == N)
          Opts.Configs.push_back(Cfg);
    if (Opts.Configs.size() != ConfigNames.size()) {
      std::fprintf(stderr, "unknown config in --configs (known:");
      for (const OracleConfig &Cfg : defaultConfigs())
        std::fprintf(stderr, " %s", Cfg.Name.c_str());
      std::fprintf(stderr, ")\n");
      return 2;
    }
  }

  // The seed list is fixed up front; sweepSeeds fans it over the worker
  // pool and reports results back here in seed order, so repro files,
  // progress lines and the early max-failures stop are byte-identical to
  // the sequential sweep at any --jobs value (docs/performance.md).
  std::vector<uint64_t> Seeds;
  if (MaxFailures > 0)
    for (uint64_t Seed = Lo; Seed < Hi; ++Seed)
      if (darm::inShard(Seed, Shards, ShardIdx))
        Seeds.push_back(Seed);

  ThreadPool Pool(Jobs);
  CompileService Cache;
  if (UseCache)
    Opts.Cache = &Cache;
  unsigned Failures = 0;
  uint64_t Swept = 0;
  sweepSeeds(Pool, Seeds, Opts,
             [&](uint64_t Seed, const OracleResult &R) -> bool {
               ++Swept;
               if (!R.Mismatch) {
                 if (!Quiet && Swept % 100 == 0)
                   std::fprintf(stderr, "... %llu seeds clean\n",
                                static_cast<unsigned long long>(Swept));
                 return true;
               }
               ++Failures;
               FuzzCase C(Seed);
               std::string Path =
                   OutDir + "/" + C.name() + "." + R.Config + ".darm";
               std::ofstream Out(Path);
               if (Out) {
                 Out << formatRepro(C, R);
                 Out.close();
               }
               std::fprintf(
                   stderr, "MISMATCH seed %llu config %s: %s\n  repro: %s\n",
                   static_cast<unsigned long long>(Seed), R.Config.c_str(),
                   R.Detail.c_str(), Out ? Path.c_str() : "(write failed)");
               return Failures < MaxFailures;
             });

  if (CacheStats) {
    const CompileService::CacheStats CS = Cache.stats();
    std::printf("CACHE entries=%llu bytes=%llu hits=%llu misses=%llu "
                "upgrades=%llu disk_hits=%llu oversized=%llu "
                "evictions=%llu duplicate_compiles=%llu hit_rate=%.4f\n",
                static_cast<unsigned long long>(CS.Entries),
                static_cast<unsigned long long>(CS.Bytes),
                static_cast<unsigned long long>(CS.Hits),
                static_cast<unsigned long long>(CS.Misses),
                static_cast<unsigned long long>(CS.Upgrades),
                static_cast<unsigned long long>(CS.DiskHits),
                static_cast<unsigned long long>(CS.Oversized),
                static_cast<unsigned long long>(CS.Evictions),
                static_cast<unsigned long long>(CS.DuplicateCompiles),
                CS.hitRate());
  }
  if (Failures) {
    std::fprintf(stderr, "%u mismatching seed(s) in [%llu, %llu)\n", Failures,
                 static_cast<unsigned long long>(Lo),
                 static_cast<unsigned long long>(Hi));
    return 1;
  }
  if (Swept == 0) {
    // e.g. --seed 5 --shards 4:2: the shard filter emptied the range; a
    // run that tested nothing must not report a clean sweep.
    std::fprintf(stderr,
                 "no seeds in [%llu, %llu) fall in shard %u of %u — "
                 "nothing was tested\n",
                 static_cast<unsigned long long>(Lo),
                 static_cast<unsigned long long>(Hi), ShardIdx, Shards);
    return 2;
  }
  std::printf("all %llu seed(s) clean across %zu transform config(s)%s%s%s\n",
              static_cast<unsigned long long>(Swept),
              (Opts.Configs.empty() ? defaultConfigs() : Opts.Configs).size(),
              Opts.RoundTrip ? " + roundtrip" : "",
              Opts.Serialize ? " + serialize" : "",
              Opts.Claims ? " + claims" : "");
  return 0;
}
