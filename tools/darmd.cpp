//===- darmd.cpp - persistent compile daemon ----------------------------------===//
//
// The compilation-as-a-service front end over CompileService
// (docs/caching.md, docs/serving.md): a persistent process answering
// textual-IR compile requests over the length-prefixed serve protocol,
// from a shared in-memory cache backed by an optional on-disk artifact
// store — so a restarted daemon serves yesterday's compiles without
// recompiling.
//
// Server modes (pick one transport):
//   darmd --listen ENDPOINT [--store DIR] [--store-mb N] [--cache-mb N]
//         [--max-conns N] [--idle-timeout-ms N] [--frame-timeout-ms N]
//         [--drain-ms N] [--fault-plan SPEC] [--stats]
//       accept connections on ENDPOINT — "host:port" (TCP) or a Unix-
//       socket path — one serving thread per client, a bounded
//       connection count with Busy load shedding above it, until
//       SIGTERM/SIGINT: then stop accepting, drain in-flight requests
//       (up to --drain-ms), and exit 0. --socket PATH is an alias for
//       --listen with a Unix path.
//   darmd --stdio [--store DIR] [--cache-mb N] [--stats]
//       serve a single session on stdin/stdout until EOF (the simplest
//       client is another darmd via socketpair; also handy under a
//       supervisor that owns the transport). --stats prints a SERVE
//       summary line to stderr at session end.
//
// Client mode (the CI serve-smoke replay, docs/caching.md):
//   darmd --connect ENDPOINT --replay-corpus [--repeat N] [--expect-warm]
//         [--retries N] [--timeout-ms N] [--fallback-local] [--stats]
//       builds every real benchmark kernel x config pipeline, sends each
//       request N times (duplicate-heavy by construction) through the
//       resilient serve::Client (retry/backoff/reconnect; with
//       --fallback-local, exhausted retries compile in-process), and
//       verifies every response artifact is BYTE-IDENTICAL to an
//       in-process compileToArtifact of the same kernel+config.
//       --expect-warm additionally fails unless zero responses were
//       freshly compiled — the "warm restart recompiles nothing" gate.
//       Exit 0 clean, 1 on any mismatch or expectation failure, 2 on
//       usage/transport error.
//
// Debug:
//   --fault-plan "seed=N[,rate=R][,sock=0|1][,store=0|1][,delay-ms=N]"
//       installs a seeded fault-injection plan (serve/FaultInjection.h)
//       for the process lifetime — the CI chaos-smoke job runs a daemon
//       under injected store faults and proves the replay still
//       converges.
//
//===----------------------------------------------------------------------===//

#include "darm/core/CompileService.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/serve/ArtifactStore.h"
#include "darm/serve/Client.h"
#include "darm/serve/FaultInjection.h"
#include "darm/serve/Server.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: darmd --listen ENDPOINT [--store DIR] [--store-mb N]\n"
      "             [--cache-mb N] [--max-conns N] [--idle-timeout-ms N]\n"
      "             [--frame-timeout-ms N] [--drain-ms N]\n"
      "             [--fault-plan SPEC] [--stats]\n"
      "       darmd --socket PATH ...      (alias: Unix-socket --listen)\n"
      "       darmd --stdio [--store DIR] [--cache-mb N] [--stats]\n"
      "       darmd --connect ENDPOINT --replay-corpus [--repeat N]\n"
      "             [--expect-warm] [--retries N] [--timeout-ms N]\n"
      "             [--fallback-local] [--stats]\n"
      "ENDPOINT is host:port (TCP) or a Unix-socket path.\n");
  return 2;
}

void printServeLine(const ServeCounters &C, const CompileService &Svc) {
  const CompileService::CacheStats CS = Svc.stats();
  std::fprintf(stderr,
               "SERVE requests=%llu compiled=%llu mem_hits=%llu "
               "disk_hits=%llu upgrades=%llu errors=%llu busy=%llu "
               "timeouts=%llu entries=%llu bytes=%llu\n",
               static_cast<unsigned long long>(C.Requests.load()),
               static_cast<unsigned long long>(C.Compiled.load()),
               static_cast<unsigned long long>(C.MemoryHits.load()),
               static_cast<unsigned long long>(C.DiskHits.load()),
               static_cast<unsigned long long>(C.Upgrades.load()),
               static_cast<unsigned long long>(C.Errors.load()),
               static_cast<unsigned long long>(C.Busy.load()),
               static_cast<unsigned long long>(C.Timeouts.load()),
               static_cast<unsigned long long>(CS.Entries),
               static_cast<unsigned long long>(CS.Bytes));
}

/// The replay corpus: every real benchmark kernel at its smallest paper
/// block size, under each named config pipeline. The same (kernel,
/// config) grid the acceptance gate quantifies over.
struct CorpusConfig {
  const char *Name;
  DARMConfig Cfg;
};

std::vector<CorpusConfig> corpusConfigs() {
  std::vector<CorpusConfig> Cs;
  Cs.push_back({"darm", DARMConfig()});
  Cs.push_back({"darm-canon", DARMConfig::withCanonicalization()});
  DARMConfig BF;
  BF.DiamondOnly = true;
  BF.EnableRegionReplication = false;
  Cs.push_back({"branch-fusion", BF});
  return Cs;
}

int runReplay(const ClientOptions &COpts, unsigned Repeat, bool ExpectWarm,
              bool Stats) {
  Client Cli(COpts);
  std::string Err;
  uint64_t Sent = 0, Compiled = 0, MemHits = 0, DiskHits = 0, Upgraded = 0;
  unsigned Mismatches = 0;
  for (const std::string &Name : realBenchmarkNames()) {
    const unsigned BS = paperBlockSizes(Name).front();
    auto B = createBenchmark(Name, BS);
    for (const CorpusConfig &CC : corpusConfigs()) {
      // The reference: the exact artifact an in-process caller gets,
      // serialized the same way the daemon serializes its response.
      Context Ctx;
      Module M(Ctx, Name);
      Function *F = B->build(M);
      const std::vector<uint8_t> Expect =
          serializeCompiledModule(compileToArtifact(*F, CC.Cfg));
      CompileRequest Req;
      Req.Cfg = CC.Cfg;
      Req.IRText = printFunction(*F);
      for (unsigned R = 0; R < Repeat; ++R) {
        CompileResponse Resp;
        if (!Cli.request(Req, Resp, &Err)) {
          std::fprintf(stderr, "darmd: %s %s: %s\n", Name.c_str(), CC.Name,
                       Err.c_str());
          return 2;
        }
        ++Sent;
        if (!Resp.Ok) {
          std::fprintf(stderr, "darmd: %s %s: daemon error: %s\n",
                       Name.c_str(), CC.Name, Resp.Error.c_str());
          ++Mismatches;
          continue;
        }
        switch (Resp.Origin) {
        case ServeOrigin::Compiled:
          ++Compiled;
          break;
        case ServeOrigin::MemoryHit:
          ++MemHits;
          break;
        case ServeOrigin::DiskHit:
          ++DiskHits;
          break;
        case ServeOrigin::Upgraded:
          ++Upgraded;
          break;
        }
        if (serializeCompiledModule(Resp.Art) != Expect) {
          std::fprintf(stderr,
                       "darmd: BYTE MISMATCH: %s %s (%s) differs from "
                       "in-process compileToArtifact\n",
                       Name.c_str(), CC.Name, originName(Resp.Origin));
          ++Mismatches;
        }
      }
    }
  }
  const ClientCounters &CC = Cli.counters();
  if (Stats || Mismatches || (ExpectWarm && (Compiled || Upgraded)))
    std::fprintf(stderr,
                 "REPLAY sent=%llu compiled=%llu mem_hits=%llu "
                 "disk_hits=%llu upgrades=%llu mismatches=%u "
                 "attempts=%llu retries=%llu reconnects=%llu "
                 "busy_shed=%llu deadline_hits=%llu fallbacks=%llu\n",
                 static_cast<unsigned long long>(Sent),
                 static_cast<unsigned long long>(Compiled),
                 static_cast<unsigned long long>(MemHits),
                 static_cast<unsigned long long>(DiskHits),
                 static_cast<unsigned long long>(Upgraded), Mismatches,
                 static_cast<unsigned long long>(CC.Attempts.load()),
                 static_cast<unsigned long long>(CC.Retries.load()),
                 static_cast<unsigned long long>(CC.Reconnects.load()),
                 static_cast<unsigned long long>(CC.BusyShed.load()),
                 static_cast<unsigned long long>(CC.DeadlineHits.load()),
                 static_cast<unsigned long long>(CC.Fallbacks.load()));
  if (Mismatches) {
    std::fprintf(stderr, "darmd: replay found %u byte mismatches\n",
                 Mismatches);
    return 1;
  }
  if (ExpectWarm && (Compiled || Upgraded)) {
    std::fprintf(stderr,
                 "darmd: --expect-warm but %llu responses were freshly "
                 "compiled — the store did not survive the restart\n",
                 static_cast<unsigned long long>(Compiled + Upgraded));
    return 1;
  }
  std::fprintf(stderr, "darmd: replay clean: %llu responses byte-identical "
                       "to in-process compiles\n",
               static_cast<unsigned long long>(Sent));
  return 0;
}

/// Self-pipe the SIGTERM/SIGINT handler writes to; main blocks on the
/// read end and runs the graceful drain. write(2) is async-signal-safe;
/// nothing else in the handler.
int SignalPipe[2] = {-1, -1};

void onStopSignal(int) {
  const char X = 's';
  [[maybe_unused]] ssize_t W = ::write(SignalPipe[1], &X, 1);
}

} // namespace

int main(int argc, char **argv) {
  std::string Endpoint, ConnectTo, StoreDir, FaultSpec;
  bool Stdio = false, Replay = false, ExpectWarm = false, Stats = false;
  bool FallbackLocal = false;
  unsigned Repeat = 2; // duplicate-heavy by default: each key twice
  unsigned Retries = 4, MaxConns = 256;
  int TimeoutMs = 10000, IdleTimeoutMs = -1, FrameTimeoutMs = 10000;
  int DrainMs = 5000;
  size_t CacheMb = 256, StoreMb = 0;
  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    if ((Arg == "--listen" || Arg == "--socket") && I + 1 < argc) {
      Endpoint = argv[++I];
    } else if (Arg == "--connect" && I + 1 < argc) {
      ConnectTo = argv[++I];
    } else if (Arg == "--store" && I + 1 < argc) {
      StoreDir = argv[++I];
    } else if (Arg == "--cache-mb" && I + 1 < argc) {
      CacheMb = static_cast<size_t>(std::atol(argv[++I]));
    } else if (Arg == "--store-mb" && I + 1 < argc) {
      StoreMb = static_cast<size_t>(std::atol(argv[++I]));
    } else if (Arg == "--max-conns" && I + 1 < argc) {
      MaxConns = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (Arg == "--idle-timeout-ms" && I + 1 < argc) {
      IdleTimeoutMs = std::atoi(argv[++I]);
    } else if (Arg == "--frame-timeout-ms" && I + 1 < argc) {
      FrameTimeoutMs = std::atoi(argv[++I]);
    } else if (Arg == "--drain-ms" && I + 1 < argc) {
      DrainMs = std::atoi(argv[++I]);
    } else if (Arg == "--fault-plan" && I + 1 < argc) {
      FaultSpec = argv[++I];
    } else if (Arg == "--retries" && I + 1 < argc) {
      Retries = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (Arg == "--timeout-ms" && I + 1 < argc) {
      TimeoutMs = std::atoi(argv[++I]);
    } else if (Arg == "--fallback-local") {
      FallbackLocal = true;
    } else if (Arg == "--stdio") {
      Stdio = true;
    } else if (Arg == "--replay-corpus") {
      Replay = true;
    } else if (Arg == "--repeat" && I + 1 < argc) {
      const int N = std::atoi(argv[++I]);
      if (N <= 0) {
        std::fprintf(stderr, "--repeat expects a positive integer\n");
        return 2;
      }
      Repeat = static_cast<unsigned>(N);
    } else if (Arg == "--expect-warm") {
      ExpectWarm = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return usage();
    }
  }

  // Belt and braces alongside MSG_NOSIGNAL: --stdio writes to a pipe,
  // where only the disposition protects us from a SIGPIPE kill.
  ::signal(SIGPIPE, SIG_IGN);

  static FaultPlan::Options FaultOpts;
  static std::unique_ptr<FaultPlan> Plan;
  if (!FaultSpec.empty()) {
    std::string Err;
    if (!FaultPlan::parse(FaultSpec, FaultOpts, &Err)) {
      std::fprintf(stderr, "darmd: bad --fault-plan: %s\n", Err.c_str());
      return 2;
    }
    Plan = std::make_unique<FaultPlan>(FaultOpts);
    setFaultPlan(Plan.get());
    std::fprintf(stderr, "darmd: fault plan installed: %s\n",
                 FaultSpec.c_str());
  }

  if (!ConnectTo.empty()) {
    if (!Replay) {
      std::fprintf(stderr, "--connect requires --replay-corpus\n");
      return usage();
    }
    ClientOptions CO;
    CO.Endpoint = ConnectTo;
    CO.RequestTimeoutMs = TimeoutMs;
    CO.MaxRetries = Retries;
    CO.Fallback = FallbackLocal ? FallbackMode::LocalCompile
                                : FallbackMode::Fail;
    return runReplay(CO, Repeat, ExpectWarm, Stats);
  }
  if (Stdio != Endpoint.empty()) {
    // Exactly one transport: --stdio xor --listen/--socket.
    return usage();
  }

  CompileService::Options Opts;
  Opts.MaxBytes = CacheMb << 20;
  CompileService Svc(Opts);
  std::unique_ptr<FileArtifactStore> Store;
  if (!StoreDir.empty()) {
    FileArtifactStore::Options SO;
    SO.MaxBytes = StoreMb << 20;
    Store = std::make_unique<FileArtifactStore>(StoreDir, SO);
    if (!Store->valid()) {
      std::fprintf(stderr, "darmd: store directory '%s' is unusable\n",
                   StoreDir.c_str());
      return 2;
    }
    Svc.setPersistence(Store.get());
  }
  ServeCounters Counters;

  if (Stdio) {
    serveStream(STDIN_FILENO, STDOUT_FILENO, Svc, &Counters);
    if (Stats)
      printServeLine(Counters, Svc);
    return 0;
  }

  std::string Err;
  uint16_t BoundPort = 0;
  const int ListenFd = listenEndpoint(Endpoint, &Err, &BoundPort);
  if (ListenFd < 0) {
    std::fprintf(stderr, "darmd: %s\n", Err.c_str());
    return 2;
  }
  SocketServer::Options SrvOpts;
  SrvOpts.MaxConnections = MaxConns;
  SrvOpts.IdleTimeoutMs = IdleTimeoutMs;
  SrvOpts.FrameTimeoutMs = FrameTimeoutMs;
  SocketServer Server(Svc, &Counters, SrvOpts);
  if (::pipe(SignalPipe) != 0 || !Server.start(ListenFd)) {
    std::fprintf(stderr, "darmd: failed to start server\n");
    ::close(ListenFd);
    return 2;
  }
  ::signal(SIGTERM, onStopSignal);
  ::signal(SIGINT, onStopSignal);
  if (endpointIsTcp(Endpoint) && BoundPort)
    std::fprintf(stderr, "darmd: serving on %s (port %u)%s%s\n",
                 Endpoint.c_str(), BoundPort,
                 StoreDir.empty() ? "" : ", store ",
                 StoreDir.empty() ? "" : StoreDir.c_str());
  else
    std::fprintf(stderr, "darmd: serving on %s%s%s\n", Endpoint.c_str(),
                 StoreDir.empty() ? "" : ", store ",
                 StoreDir.empty() ? "" : StoreDir.c_str());

  // Block until SIGTERM/SIGINT, then drain: stop accepting, finish the
  // requests already read (bounded by --drain-ms), exit 0.
  char Buf;
  while (::read(SignalPipe[0], &Buf, 1) < 0 && errno == EINTR) {
  }
  const bool Drained = Server.drain(DrainMs);
  if (Stats)
    printServeLine(Counters, Svc);
  std::fprintf(stderr, "darmd: %s\n",
               Drained ? "drained, exiting" : "drain deadline hit, exiting");
  return 0;
}
