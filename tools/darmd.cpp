//===- darmd.cpp - persistent compile daemon ----------------------------------===//
//
// The compilation-as-a-service front end over CompileService
// (docs/caching.md): a persistent process answering textual-IR compile
// requests over the length-prefixed serve protocol, from a shared
// in-memory cache backed by an optional on-disk artifact store — so a
// restarted daemon serves yesterday's compiles without recompiling.
//
// Server modes (pick one transport):
//   darmd --socket PATH [--store DIR] [--cache-mb N]
//       accept connections on a Unix-domain socket, one serving thread
//       per client, until killed
//   darmd --stdio [--store DIR] [--cache-mb N] [--stats]
//       serve a single session on stdin/stdout until EOF (the simplest
//       client is another darmd via socketpair; also handy under a
//       supervisor that owns the transport). --stats prints a SERVE
//       summary line to stderr at session end.
//
// Client mode (the CI serve-smoke replay, docs/caching.md):
//   darmd --connect PATH --replay-corpus [--repeat N] [--expect-warm]
//         [--stats]
//       builds every real benchmark kernel x config pipeline, sends each
//       request N times (duplicate-heavy by construction), and verifies
//       every response artifact is BYTE-IDENTICAL to an in-process
//       compileToArtifact of the same kernel+config. --expect-warm
//       additionally fails unless zero responses were freshly compiled —
//       the "warm restart recompiles nothing" gate. Exit 0 clean, 1 on
//       any mismatch or expectation failure, 2 on usage/transport error.
//
//===----------------------------------------------------------------------===//

#include "darm/core/CompileService.h"
#include "darm/ir/Context.h"
#include "darm/ir/IRPrinter.h"
#include "darm/ir/Module.h"
#include "darm/kernels/Benchmark.h"
#include "darm/serve/ArtifactStore.h"
#include "darm/serve/Server.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace darm;
using namespace darm::serve;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: darmd --socket PATH [--store DIR] [--cache-mb N]\n"
      "       darmd --stdio [--store DIR] [--cache-mb N] [--stats]\n"
      "       darmd --connect PATH --replay-corpus [--repeat N]\n"
      "             [--expect-warm] [--stats]\n");
  return 2;
}

void printServeLine(const ServeCounters &C, const CompileService &Svc) {
  const CompileService::CacheStats CS = Svc.stats();
  std::fprintf(stderr,
               "SERVE requests=%llu compiled=%llu mem_hits=%llu "
               "disk_hits=%llu upgrades=%llu errors=%llu entries=%llu "
               "bytes=%llu\n",
               static_cast<unsigned long long>(C.Requests.load()),
               static_cast<unsigned long long>(C.Compiled.load()),
               static_cast<unsigned long long>(C.MemoryHits.load()),
               static_cast<unsigned long long>(C.DiskHits.load()),
               static_cast<unsigned long long>(C.Upgrades.load()),
               static_cast<unsigned long long>(C.Errors.load()),
               static_cast<unsigned long long>(CS.Entries),
               static_cast<unsigned long long>(CS.Bytes));
}

/// The replay corpus: every real benchmark kernel at its smallest paper
/// block size, under each named config pipeline. The same (kernel,
/// config) grid the acceptance gate quantifies over.
struct CorpusConfig {
  const char *Name;
  DARMConfig Cfg;
};

std::vector<CorpusConfig> corpusConfigs() {
  std::vector<CorpusConfig> Cs;
  Cs.push_back({"darm", DARMConfig()});
  Cs.push_back({"darm-canon", DARMConfig::withCanonicalization()});
  DARMConfig BF;
  BF.DiamondOnly = true;
  BF.EnableRegionReplication = false;
  Cs.push_back({"branch-fusion", BF});
  return Cs;
}

int runReplay(const std::string &SocketPath, unsigned Repeat, bool ExpectWarm,
              bool Stats) {
  std::string Err;
  const int Fd = connectUnixSocket(SocketPath, &Err);
  if (Fd < 0) {
    std::fprintf(stderr, "darmd: %s\n", Err.c_str());
    return 2;
  }
  uint64_t Sent = 0, Compiled = 0, MemHits = 0, DiskHits = 0, Upgraded = 0;
  unsigned Mismatches = 0;
  for (const std::string &Name : realBenchmarkNames()) {
    const unsigned BS = paperBlockSizes(Name).front();
    auto B = createBenchmark(Name, BS);
    for (const CorpusConfig &CC : corpusConfigs()) {
      // The reference: the exact artifact an in-process caller gets,
      // serialized the same way the daemon serializes its response.
      Context Ctx;
      Module M(Ctx, Name);
      Function *F = B->build(M);
      const std::vector<uint8_t> Expect =
          serializeCompiledModule(compileToArtifact(*F, CC.Cfg));
      CompileRequest Req;
      Req.Cfg = CC.Cfg;
      Req.IRText = printFunction(*F);
      for (unsigned R = 0; R < Repeat; ++R) {
        CompileResponse Resp;
        if (!roundTrip(Fd, Req, Resp, &Err)) {
          std::fprintf(stderr, "darmd: %s %s: %s\n", Name.c_str(), CC.Name,
                       Err.c_str());
          ::close(Fd);
          return 2;
        }
        ++Sent;
        if (!Resp.Ok) {
          std::fprintf(stderr, "darmd: %s %s: daemon error: %s\n",
                       Name.c_str(), CC.Name, Resp.Error.c_str());
          ++Mismatches;
          continue;
        }
        switch (Resp.Origin) {
        case ServeOrigin::Compiled:
          ++Compiled;
          break;
        case ServeOrigin::MemoryHit:
          ++MemHits;
          break;
        case ServeOrigin::DiskHit:
          ++DiskHits;
          break;
        case ServeOrigin::Upgraded:
          ++Upgraded;
          break;
        }
        if (serializeCompiledModule(Resp.Art) != Expect) {
          std::fprintf(stderr,
                       "darmd: BYTE MISMATCH: %s %s (%s) differs from "
                       "in-process compileToArtifact\n",
                       Name.c_str(), CC.Name, originName(Resp.Origin));
          ++Mismatches;
        }
      }
    }
  }
  ::close(Fd);
  if (Stats || Mismatches || (ExpectWarm && (Compiled || Upgraded)))
    std::fprintf(stderr,
                 "REPLAY sent=%llu compiled=%llu mem_hits=%llu "
                 "disk_hits=%llu upgrades=%llu mismatches=%u\n",
                 static_cast<unsigned long long>(Sent),
                 static_cast<unsigned long long>(Compiled),
                 static_cast<unsigned long long>(MemHits),
                 static_cast<unsigned long long>(DiskHits),
                 static_cast<unsigned long long>(Upgraded),
                 Mismatches);
  if (Mismatches) {
    std::fprintf(stderr, "darmd: replay found %u byte mismatches\n",
                 Mismatches);
    return 1;
  }
  if (ExpectWarm && (Compiled || Upgraded)) {
    std::fprintf(stderr,
                 "darmd: --expect-warm but %llu responses were freshly "
                 "compiled — the store did not survive the restart\n",
                 static_cast<unsigned long long>(Compiled + Upgraded));
    return 1;
  }
  std::fprintf(stderr, "darmd: replay clean: %llu responses byte-identical "
                       "to in-process compiles\n",
               static_cast<unsigned long long>(Sent));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, ConnectPath, StoreDir;
  bool Stdio = false, Replay = false, ExpectWarm = false, Stats = false;
  unsigned Repeat = 2; // duplicate-heavy by default: each key twice
  size_t CacheMb = 256;
  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    if (Arg == "--socket" && I + 1 < argc) {
      SocketPath = argv[++I];
    } else if (Arg == "--connect" && I + 1 < argc) {
      ConnectPath = argv[++I];
    } else if (Arg == "--store" && I + 1 < argc) {
      StoreDir = argv[++I];
    } else if (Arg == "--cache-mb" && I + 1 < argc) {
      CacheMb = static_cast<size_t>(std::atol(argv[++I]));
    } else if (Arg == "--stdio") {
      Stdio = true;
    } else if (Arg == "--replay-corpus") {
      Replay = true;
    } else if (Arg == "--repeat" && I + 1 < argc) {
      const int N = std::atoi(argv[++I]);
      if (N <= 0) {
        std::fprintf(stderr, "--repeat expects a positive integer\n");
        return 2;
      }
      Repeat = static_cast<unsigned>(N);
    } else if (Arg == "--expect-warm") {
      ExpectWarm = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      return usage();
    }
  }

  if (!ConnectPath.empty()) {
    if (!Replay) {
      std::fprintf(stderr, "--connect requires --replay-corpus\n");
      return usage();
    }
    return runReplay(ConnectPath, Repeat, ExpectWarm, Stats);
  }
  if (Stdio != SocketPath.empty()) {
    // Exactly one transport: --stdio xor --socket.
    return usage();
  }

  CompileService::Options Opts;
  Opts.MaxBytes = CacheMb << 20;
  CompileService Svc(Opts);
  std::unique_ptr<FileArtifactStore> Store;
  if (!StoreDir.empty()) {
    Store = std::make_unique<FileArtifactStore>(StoreDir);
    if (!Store->valid()) {
      std::fprintf(stderr, "darmd: store directory '%s' is unusable\n",
                   StoreDir.c_str());
      return 2;
    }
    Svc.setPersistence(Store.get());
  }
  ServeCounters Counters;

  if (Stdio) {
    serveStream(STDIN_FILENO, STDOUT_FILENO, Svc, &Counters);
    if (Stats)
      printServeLine(Counters, Svc);
    return 0;
  }

  std::string Err;
  const int ListenFd = listenUnixSocket(SocketPath, &Err);
  if (ListenFd < 0) {
    std::fprintf(stderr, "darmd: %s\n", Err.c_str());
    return 2;
  }
  std::fprintf(stderr, "darmd: serving on %s%s%s\n", SocketPath.c_str(),
               StoreDir.empty() ? "" : ", store ",
               StoreDir.empty() ? "" : StoreDir.c_str());
  acceptLoop(ListenFd, Svc, &Counters);
  ::close(ListenFd);
  return 0;
}
