//===- darm_check.cpp - Paper-claims conformance driver ---------------------------===//
//
// Front-end over src/check (docs/claims.md): measures every kernel in the
// corpus — src/kernels benchmarks at their smallest/largest paper block
// size, plus seeded fuzz kernels — under the unmelded / darm /
// darm-aggressive / branch-fusion configurations, then
//
//   * enforces the SimStats plausibility invariants (melding must not
//     increase divergent branches, reduce ALU utilization beyond
//     tolerance, or grow the memory-instruction count; memory images
//     stay bit-identical),
//   * optionally diffs the measurements per-counter against recorded
//     darm-claims-v1 goldens (--goldens DIR; DARM_REGEN_GOLDENS=1
//     rewrites them),
//   * optionally emits the whole measurement as JSON (--json FILE) for
//     the CI artifact trail.
//
//   darm_check                                  full benchmark corpus
//   darm_check --benchmarks BIT,SRAD            subset
//   darm_check --fuzz-seeds 0:2000              + fuzz kernels
//   darm_check --shards 4:1                     every 4th item, offset 1
//   darm_check --goldens tests/goldens/claims   golden regression gate
//     --json FILE      write darm-claims-v1 JSON of all measurements
//     --alu-tol X      allowed absolute aluUtilization drop (default 0.02)
//     --db-slack N     allowed extra dynamic divergent branches (default 0)
//     --mem-tol X      allowed fractional mem-instruction growth (default 0)
//                      (the three tolerance flags tune the benchmark-cell
//                      gate; fuzz kernels always use the fixed generated-
//                      kernel/aggregate profiles — docs/claims.md)
//     --no-claims      skip the plausibility gate (goldens/JSON only)
//     --quiet          no per-kernel progress
//
// Exit status: 0 clean, 1 violations or golden diffs, 2 usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "darm/check/CorpusRunner.h"
#include "darm/check/GoldenStore.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/support/Shards.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace darm;
using namespace darm::check;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--benchmarks A,B] [--fuzz-seeds LO:HI] [--shards N:i]\n"
      "          [--goldens DIR] [--json FILE] [--alu-tol X] [--db-slack N]\n"
      "          [--mem-tol X] [--no-claims] [--quiet]\n"
      "tolerance flags apply to benchmark cells; fuzz kernels use the fixed\n"
      "generated-kernel and aggregate profiles (docs/claims.md)\n",
      Argv0);
  return 2;
}


} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> BenchNames;
  uint64_t FuzzLo = 0, FuzzHi = 0;
  unsigned Shards = 1, ShardIdx = 0;
  std::string GoldenDir, JsonPath;
  ClaimsOptions Opts;
  bool RunClaims = true;
  bool Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextVal = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--benchmarks") {
      const char *V = NextVal("--benchmarks");
      if (!V)
        return 2;
      BenchNames = splitList(V);
    } else if (Arg == "--fuzz-seeds") {
      const char *V = NextVal("--fuzz-seeds");
      if (!V)
        return 2;
      if (!darm::parseSeedRange(V, FuzzLo, FuzzHi)) {
        std::fprintf(stderr,
                     "--fuzz-seeds expects LO:HI with HI > LO; a typo must "
                     "not pass the gate vacuously\n");
        return 2;
      }
    } else if (Arg == "--shards") {
      const char *V = NextVal("--shards");
      if (!V)
        return 2;
      if (!parseShardSpec(V, Shards, ShardIdx)) {
        std::fprintf(stderr, "--shards expects N:i with 0 <= i < N\n");
        return 2;
      }
    } else if (Arg == "--goldens") {
      const char *V = NextVal("--goldens");
      if (!V)
        return 2;
      GoldenDir = V;
    } else if (Arg == "--json") {
      const char *V = NextVal("--json");
      if (!V)
        return 2;
      JsonPath = V;
    } else if (Arg == "--alu-tol") {
      const char *V = NextVal("--alu-tol");
      if (!V)
        return 2;
      char *End = nullptr;
      Opts.AluUtilDropTol = std::strtod(V, &End);
      // Utilization is a ratio: a tolerance outside [0, 1) disables the
      // gate entirely, which must be an explicit --no-claims, not a
      // unit mix-up (2 for 2%).
      if (*End != '\0' || Opts.AluUtilDropTol < 0.0 ||
          Opts.AluUtilDropTol >= 1.0) {
        std::fprintf(stderr, "--alu-tol expects a fraction in [0, 1)\n");
        return 2;
      }
    } else if (Arg == "--db-slack") {
      const char *V = NextVal("--db-slack");
      if (!V)
        return 2;
      char *End = nullptr;
      Opts.DivergentBranchSlack = std::strtoull(V, &End, 10);
      if (*End != '\0' || *V == '-') {
        std::fprintf(stderr, "--db-slack expects a non-negative integer\n");
        return 2;
      }
    } else if (Arg == "--mem-tol") {
      const char *V = NextVal("--mem-tol");
      if (!V)
        return 2;
      char *End = nullptr;
      Opts.MemInstIncreaseTol = std::strtod(V, &End);
      if (*End != '\0' || Opts.MemInstIncreaseTol < 0.0) {
        std::fprintf(stderr,
                     "--mem-tol expects a non-negative fraction (e.g. 0.03)\n");
        return 2;
      }
    } else if (Arg == "--no-claims") {
      RunClaims = false;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "-help" || Arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return usage(argv[0]);
    }
  }

  const bool Regen = std::getenv("DARM_REGEN_GOLDENS") != nullptr;
  if (Regen && !GoldenDir.empty() && Shards > 1) {
    std::fprintf(stderr,
                 "refusing to regenerate goldens from a sharded run — a "
                 "shard sees only part of the corpus\n");
    return 2;
  }

  // ---- measure ----------------------------------------------------------
  std::vector<KernelClaims> Measured;
  std::vector<BenchCell> Cells = benchmarkCorpus();
  if (!BenchNames.empty()) {
    std::vector<BenchCell> Filtered;
    for (const BenchCell &Cell : Cells)
      for (const std::string &N : BenchNames)
        if (Cell.Name == N)
          Filtered.push_back(Cell);
    if (Filtered.empty()) {
      std::fprintf(stderr, "no corpus cells match --benchmarks\n");
      return 2;
    }
    Cells = Filtered;
  }
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (!inShard(I, Shards, ShardIdx))
      continue;
    if (!Quiet)
      std::fprintf(stderr, "measuring %s/bs%u...\n", Cells[I].Name.c_str(),
                   Cells[I].BlockSize);
    Measured.push_back(measureBenchmark(Cells[I]));
  }
  for (uint64_t Seed = FuzzLo; Seed < FuzzHi; ++Seed) {
    if (!inShard(Seed, Shards, ShardIdx))
      continue;
    if (!Quiet && (Seed - FuzzLo) % 250 == 0)
      std::fprintf(stderr, "measuring fuzz seeds %llu...\n",
                   static_cast<unsigned long long>(Seed));
    Measured.push_back(measureFuzz(fuzz::FuzzCase(Seed)));
  }
  if (Measured.empty()) {
    // Same guard as darm_fuzz: filters that leave nothing measured must
    // not report a clean conformance pass.
    std::fprintf(stderr,
                 "shard %u of %u selects no corpus cell or fuzz seed — "
                 "nothing was tested\n",
                 ShardIdx, Shards);
    return 2;
  }

  // ---- plausibility gate ------------------------------------------------
  // Benchmarks use the strict (CLI-tunable) tolerances; fuzz kernels use
  // the generated-kernel pathology-alarm profile per seed, plus a strict
  // gate on the population aggregate — the direction the paper actually
  // claims (see ClaimsOptions::forGeneratedKernels).
  unsigned Failures = 0;
  if (RunClaims) {
    const ClaimsOptions FuzzOpts = ClaimsOptions::forGeneratedKernels();
    std::vector<KernelClaims> FuzzMeasured;
    for (const KernelClaims &K : Measured) {
      const bool IsFuzz = K.BlockSize == 0;
      if (IsFuzz)
        FuzzMeasured.push_back(K);
      for (const Violation &V : checkClaims(K, IsFuzz ? FuzzOpts : Opts)) {
        std::fprintf(stderr, "CLAIM VIOLATION %s\n", V.str().c_str());
        ++Failures;
      }
    }
    if (!FuzzMeasured.empty()) {
      char Name[80];
      if (Shards > 1)
        std::snprintf(Name, sizeof(Name), "fuzz-aggregate[%llu:%llu)%%%u:%u",
                      static_cast<unsigned long long>(FuzzLo),
                      static_cast<unsigned long long>(FuzzHi), Shards,
                      ShardIdx);
      else
        std::snprintf(Name, sizeof(Name), "fuzz-aggregate[%llu:%llu)",
                      static_cast<unsigned long long>(FuzzLo),
                      static_cast<unsigned long long>(FuzzHi));
      KernelClaims Agg = aggregateClaims(FuzzMeasured, Name);
      // The aggregate gate is statistical: the paper's direction holds
      // over a *population*, not over a shard's slice or a smoke-sized
      // window where a handful of guard branches can outweigh the
      // melding wins (seeds [0,100) measure +4 divergent branches;
      // [0,2000) measure -267). Small or sharded runs record the
      // aggregate in the JSON artifact without gating on it.
      constexpr size_t MinAggregatePopulation = 500;
      if (Shards > 1 || FuzzMeasured.size() < MinAggregatePopulation) {
        if (!Quiet)
          std::fprintf(stderr,
                       "%s: skipping the population aggregate gate "
                       "(%s recorded in JSON only)\n",
                       Shards > 1 ? "sharded run" : "window below 500 seeds",
                       Name);
      } else {
        for (const Violation &V :
             checkClaims(Agg, ClaimsOptions::forGeneratedAggregate())) {
          std::fprintf(stderr, "CLAIM VIOLATION %s\n", V.str().c_str());
          ++Failures;
        }
      }
      Measured.push_back(std::move(Agg)); // keep it in the JSON artifact
    }
  }

  // ---- golden regression gate ------------------------------------------
  // Goldens cover the deterministic benchmark corpus only (one file per
  // benchmark). Fuzz cells vary with the swept window, so they are gated
  // by the plausibility checks above; the pinned-seed fuzz golden is
  // owned by tests/claims_test.cpp.
  if (!GoldenDir.empty()) {
    std::map<std::string, std::vector<KernelClaims>> ByFile;
    for (const KernelClaims &K : Measured)
      if (K.BlockSize != 0)
        ByFile[K.Kernel].push_back(K);

    for (const auto &[Key, Kernels] : ByFile) {
      const std::string Path = GoldenDir + "/" + Key + ".json";
      if (Regen) {
        GoldenFile G;
        G.Kernels = Kernels;
        std::string Err;
        if (!saveGoldenFile(Path, G, &Err)) {
          std::fprintf(stderr, "%s\n", Err.c_str());
          return 2;
        }
        if (!Quiet)
          std::fprintf(stderr, "regenerated %s\n", Path.c_str());
        continue;
      }
      GoldenFile G;
      std::string Err;
      if (!loadGoldenFile(Path, G, &Err)) {
        std::fprintf(stderr, "GOLDEN LOAD FAILED %s: %s\n", Path.c_str(),
                     Err.c_str());
        ++Failures;
        continue;
      }
      // A shard measures only part of the corpus; diff only what ran.
      if (Shards > 1) {
        GoldenFile Partial;
        for (const KernelClaims &GK : G.Kernels)
          for (const KernelClaims &MK : Kernels)
            if (GK.cellName() == MK.cellName())
              Partial.Kernels.push_back(GK);
        G = std::move(Partial);
      }
      for (const std::string &Line : diffClaims(G, Kernels)) {
        std::fprintf(stderr, "GOLDEN DIFF %s\n", Line.c_str());
        ++Failures;
      }
    }

    // A full, unfiltered run must also notice *orphaned* golden files —
    // a benchmark renamed out of the corpus would otherwise leave its
    // recorded golden green-but-unchecked forever. fuzz.json is owned
    // by tests/claims_test.cpp (pinned seeds), not this tool.
    if (!Regen && Shards == 1 && BenchNames.empty()) {
      std::error_code EC;
      for (const auto &Entry :
           std::filesystem::directory_iterator(GoldenDir, EC)) {
        if (Entry.path().extension() != ".json")
          continue;
        const std::string Key = Entry.path().stem().string();
        if (Key == "fuzz" || ByFile.count(Key))
          continue;
        std::fprintf(stderr,
                     "GOLDEN ORPHAN %s: recorded but no such kernel in the "
                     "corpus\n",
                     Entry.path().string().c_str());
        ++Failures;
      }
      if (EC) {
        std::fprintf(stderr, "cannot enumerate '%s': %s\n", GoldenDir.c_str(),
                     EC.message().c_str());
        ++Failures;
      }
    }
  }

  // ---- JSON artifact ----------------------------------------------------
  if (!JsonPath.empty()) {
    GoldenFile G;
    G.Kernels = Measured;
    std::string Err;
    if (!saveGoldenFile(JsonPath, G, &Err)) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 2;
    }
  }

  if (Failures) {
    std::fprintf(stderr, "%u failure(s) over %zu measured kernel(s)\n",
                 Failures, Measured.size());
    return 1;
  }
  std::printf("all %zu kernel(s) conform (%s%s)\n", Measured.size(),
              RunClaims ? "claims" : "no claims gate",
              GoldenDir.empty() ? "" : " + goldens");
  return 0;
}
