//===- darm_check.cpp - Paper-claims conformance driver ---------------------------===//
//
// Front-end over src/check (docs/claims.md): measures every kernel in the
// corpus — src/kernels benchmarks at their smallest/largest paper block
// size, plus seeded fuzz kernels — under the unmelded / darm /
// darm-aggressive / branch-fusion configurations, then
//
//   * enforces the SimStats plausibility invariants (melding must not
//     increase divergent branches, reduce ALU utilization beyond
//     tolerance, or grow the memory-instruction count; memory images
//     stay bit-identical),
//   * optionally diffs the measurements per-counter against recorded
//     darm-claims-v1 goldens (--goldens DIR; DARM_REGEN_GOLDENS=1
//     rewrites them),
//   * optionally emits the whole measurement as JSON (--json FILE) for
//     the CI artifact trail.
//
//   darm_check                                  full benchmark corpus
//   darm_check --benchmarks BIT,SRAD            subset
//   darm_check --fuzz-seeds 0:2000              + fuzz kernels
//   darm_check --shards 4:1                     every 4th item, offset 1
//   darm_check --goldens tests/goldens/claims   golden regression gate
//   darm_check --compare old.json new.json      diff two darm-claims-v1
//                                               aggregates; exit 1 on any
//                                               paper-direction regression
//     --jobs N         in-process worker threads (default: hardware
//                      concurrency; results byte-identical at any N)
//     --json FILE      write darm-claims-v1 JSON of all measurements
//     --compare-tol X  allowed drift of the per-kernel melding ratios in
//                      --compare mode (default 0.02)
//     --alu-tol X      allowed absolute aluUtilization drop (default 0.02)
//     --db-slack N     allowed extra dynamic divergent branches (default 0)
//     --mem-tol X      allowed fractional mem-instruction growth (default 0)
//                      (the three tolerance flags tune the benchmark-cell
//                      gate; fuzz kernels always use the fixed generated-
//                      kernel/aggregate profiles — docs/claims.md)
//     --cache          compile every (kernel, config) pair through an
//                      in-process CompileService (docs/caching.md);
//                      measurements stay byte-identical to uncached runs
//     --no-cache       force the direct compile path (wins over --cache
//                      and --measure-twice's implied cache)
//     --cache-stats    print a CACHE summary line (hits, misses, hit
//                      rate, bytes, evictions) after measuring
//     --measure-twice  measure the whole corpus twice in one process —
//                      cold cache, then warm — and fail unless the two
//                      darm-claims-v1 artifacts are byte-identical (the
//                      CI cache-coherence gate); implies --cache
//     --no-claims      skip the plausibility gate (goldens/JSON only)
//     --attribution    measure fuzz kernels under the per-pass attribution
//                      configs (darm, darm-constprop, ..., darm-canon) and
//                      print ATTRIBUTION summary lines for the aggregate;
//                      memory identity still gates, counter direction does
//                      not (docs/passes.md)
//     --quiet          no per-kernel progress
//
// Exit status: 0 clean, 1 violations or golden diffs, 2 usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "darm/check/CorpusRunner.h"
#include "darm/check/GoldenStore.h"
#include "darm/core/CompileService.h"
#include "darm/fuzz/KernelGenerator.h"
#include "darm/support/Parallel.h"
#include "darm/support/Shards.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace darm;
using namespace darm::check;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--benchmarks A,B] [--fuzz-seeds LO:HI] [--shards N:i]\n"
      "          [--jobs N] [--goldens DIR] [--json FILE] [--alu-tol X]\n"
      "          [--db-slack N] [--mem-tol X] [--no-claims] [--attribution]\n"
      "          [--cache] [--no-cache] [--cache-stats] [--measure-twice]\n"
      "          [--quiet]\n"
      "       %s --compare OLD.json NEW.json [--compare-tol X] [--quiet]\n"
      "tolerance flags apply to benchmark cells; fuzz kernels use the fixed\n"
      "generated-kernel and aggregate profiles (docs/claims.md)\n",
      Argv0, Argv0);
  return 2;
}

/// --compare mode (docs/claims.md): diffs two darm-claims-v1 artifacts —
/// typically consecutive nightly aggregates — on the *melding-efficacy
/// ratios* each file records against its own unmelded reference, never
/// on absolute counters (nightly seed windows advance daily, so
/// absolutes are not comparable across runs). For every kernel present
/// in both files and every paper-claim config (the claims-exempt
/// coverage configs are skipped, same policy as the plausibility gate),
/// a regression is:
///
///   * divergent-branch ratio (config / unmelded) grew by more than Tol,
///   * ALU-utilization delta (config - unmelded) shrank by more than Tol,
///   * memory-instruction ratio grew by more than Tol, or
///   * a config valid in OLD measures invalid in NEW.
///
/// Fuzz-aggregate rows are matched by their "fuzz-aggregate" prefix so
/// windows [N, N+100k) and [N+100k, N+200k) still pair up.
int compareArtifacts(const std::string &OldPath, const std::string &NewPath,
                     double Tol, bool Quiet) {
  auto Load = [](const std::string &Path, GoldenFile &G) -> bool {
    std::string Err;
    if (loadGoldenFile(Path, G, &Err))
      return true;
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), Err.c_str());
    return false;
  };
  GoldenFile Old, New;
  if (!Load(OldPath, Old) || !Load(NewPath, New))
    return 2;

  auto Key = [](const KernelClaims &K) -> std::string {
    const std::string Prefix = "fuzz-aggregate";
    if (K.Kernel.rfind(Prefix, 0) == 0)
      return Prefix;
    return K.cellName();
  };
  std::map<std::string, const KernelClaims *> OldByKey;
  for (const KernelClaims &K : Old.Kernels)
    OldByKey[Key(K)] = &K;

  auto FindConfig = [](const KernelClaims &K,
                       const std::string &Name) -> const ConfigMetrics * {
    for (const ConfigMetrics &C : K.Configs)
      if (C.Config == Name)
        return &C;
    return nullptr;
  };
  auto MemInsts = [](const SimStats &S) {
    return S.VectorMemInsts + S.SharedMemInsts;
  };
  // Ratio vs the same file's unmelded row; a zero reference counts as
  // ratio 1 when the config is also zero (nothing to meld) and infinity
  // otherwise.
  auto Ratio = [](uint64_t Got, uint64_t Ref) {
    if (Ref == 0)
      return Got == 0 ? 1.0 : std::numeric_limits<double>::infinity();
    return static_cast<double>(Got) / static_cast<double>(Ref);
  };

  unsigned Regressions = 0, Compared = 0;
  for (const KernelClaims &NK : New.Kernels) {
    auto It = OldByKey.find(Key(NK));
    if (It == OldByKey.end())
      continue; // window-dependent kernel; nothing to compare against
    const KernelClaims &OK = *It->second;
    const ConfigMetrics *NewRef = FindConfig(NK, "unmelded");
    const ConfigMetrics *OldRef = FindConfig(OK, "unmelded");
    if (!NewRef || !OldRef)
      continue;
    // A gated config that OLD measured but NEW dropped is itself a
    // regression: silent coverage loss must not read as a clean pass.
    for (const ConfigMetrics &OC2 : OK.Configs) {
      if (OC2.Config == "unmelded" ||
          optionsForConfig(OC2.Config, ClaimsOptions()).Skip)
        continue;
      if (!FindConfig(NK, OC2.Config)) {
        std::fprintf(stderr,
                     "COMPARE REGRESSION %s %s: config present in old "
                     "artifact, missing in new\n",
                     Key(NK).c_str(), OC2.Config.c_str());
        ++Regressions;
      }
    }
    for (const ConfigMetrics &NC : NK.Configs) {
      if (NC.Config == "unmelded")
        continue;
      const ConfigMetrics *OC = FindConfig(OK, NC.Config);
      if (optionsForConfig(NC.Config, ClaimsOptions()).Skip) {
        // Claims-exempt rows never gate, but the attribution configs
        // (darm-constprop .. darm-canon) are recorded precisely so two
        // artifacts can be read side by side: print the same ratios as
        // informational ATTRIBUTION lines. "new" alone still prints —
        // that is how a freshly added pass first shows its effect.
        if (!Quiet && NC.Valid && NewRef->Valid) {
          const double NewDb = Ratio(NC.Stats.DivergentBranches,
                                     NewRef->Stats.DivergentBranches);
          const double NewUtil =
              NC.Stats.aluUtilization() - NewRef->Stats.aluUtilization();
          if (OC && OC->Valid && OldRef->Valid) {
            const double OldDb = Ratio(OC->Stats.DivergentBranches,
                                       OldRef->Stats.DivergentBranches);
            const double OldUtil =
                OC->Stats.aluUtilization() - OldRef->Stats.aluUtilization();
            std::printf("ATTRIBUTION %s %s: db_ratio old=%.4f new=%.4f "
                        "alu_delta old=%+.4f new=%+.4f\n",
                        Key(NK).c_str(), NC.Config.c_str(), OldDb, NewDb,
                        OldUtil, NewUtil);
          } else {
            std::printf("ATTRIBUTION %s %s: db_ratio new=%.4f alu_delta "
                        "new=%+.4f (no old row)\n",
                        Key(NK).c_str(), NC.Config.c_str(), NewDb, NewUtil);
          }
        }
        continue;
      }
      if (!OC)
        continue;
      ++Compared;
      auto Flag = [&](const char *Metric, double OldV, double NewV) {
        std::fprintf(stderr,
                     "COMPARE REGRESSION %s %s: %s old=%.4f new=%.4f\n",
                     Key(NK).c_str(), NC.Config.c_str(), Metric, OldV, NewV);
        ++Regressions;
      };
      if (OC->Valid && !NC.Valid) {
        Flag("valid", 1, 0);
        continue;
      }
      // Ratios are only meaningful between two valid measurements of
      // both the config and its reference: an invalid row carries
      // zeroed/partial stats (e.g. a simulator abort), and invalid→valid
      // is an improvement, not a regression.
      if (!OC->Valid || !NC.Valid || !OldRef->Valid || !NewRef->Valid)
        continue;
      const double OldDb = Ratio(OC->Stats.DivergentBranches,
                                 OldRef->Stats.DivergentBranches);
      const double NewDb = Ratio(NC.Stats.DivergentBranches,
                                 NewRef->Stats.DivergentBranches);
      if (NewDb > OldDb + Tol)
        Flag("divergent_branch_ratio", OldDb, NewDb);
      const double OldUtil =
          OC->Stats.aluUtilization() - OldRef->Stats.aluUtilization();
      const double NewUtil =
          NC.Stats.aluUtilization() - NewRef->Stats.aluUtilization();
      if (NewUtil < OldUtil - Tol)
        Flag("alu_util_delta", OldUtil, NewUtil);
      const double OldMem =
          Ratio(MemInsts(OC->Stats), MemInsts(OldRef->Stats));
      const double NewMem =
          Ratio(MemInsts(NC.Stats), MemInsts(NewRef->Stats));
      if (NewMem > OldMem + Tol)
        Flag("mem_inst_ratio", OldMem, NewMem);
    }
  }

  if (Compared == 0) {
    std::fprintf(stderr,
                 "--compare found no common (kernel, config) cells between "
                 "'%s' and '%s' — nothing was compared\n",
                 OldPath.c_str(), NewPath.c_str());
    return 2;
  }
  if (Regressions) {
    std::fprintf(stderr, "%u paper-direction regression(s) over %u cell(s)\n",
                 Regressions, Compared);
    return 1;
  }
  if (!Quiet)
    std::printf("no paper-direction regressions over %u compared cell(s)\n",
                Compared);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> BenchNames;
  uint64_t FuzzLo = 0, FuzzHi = 0;
  unsigned Shards = 1, ShardIdx = 0;
  unsigned Jobs = hardwareParallelism();
  std::string GoldenDir, JsonPath;
  std::string CompareOld, CompareNew;
  double CompareTol = 0.02;
  ClaimsOptions Opts;
  bool RunClaims = true;
  bool Attribution = false;
  bool Quiet = false;
  bool UseCache = false;
  bool NoCache = false;
  bool CacheStats = false;
  bool MeasureTwice = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextVal = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--benchmarks") {
      const char *V = NextVal("--benchmarks");
      if (!V)
        return 2;
      BenchNames = splitList(V);
    } else if (Arg == "--fuzz-seeds") {
      const char *V = NextVal("--fuzz-seeds");
      if (!V)
        return 2;
      if (!darm::parseSeedRange(V, FuzzLo, FuzzHi)) {
        std::fprintf(stderr,
                     "--fuzz-seeds expects LO:HI with HI > LO; a typo must "
                     "not pass the gate vacuously\n");
        return 2;
      }
    } else if (Arg == "--shards") {
      const char *V = NextVal("--shards");
      if (!V)
        return 2;
      if (!parseShardSpec(V, Shards, ShardIdx)) {
        std::fprintf(stderr, "--shards expects N:i with 0 <= i < N\n");
        return 2;
      }
    } else if (Arg == "--jobs") {
      const char *V = NextVal("--jobs");
      if (!V)
        return 2;
      if (!parseJobs(V, Jobs)) {
        std::fprintf(stderr, "--jobs expects a positive integer\n");
        return 2;
      }
    } else if (Arg == "--compare") {
      if (I + 2 >= argc) {
        std::fprintf(stderr, "--compare needs two darm-claims-v1 files\n");
        return 2;
      }
      CompareOld = argv[++I];
      CompareNew = argv[++I];
    } else if (Arg == "--compare-tol") {
      const char *V = NextVal("--compare-tol");
      if (!V)
        return 2;
      char *End = nullptr;
      CompareTol = std::strtod(V, &End);
      if (*End != '\0' || CompareTol < 0.0) {
        std::fprintf(stderr,
                     "--compare-tol expects a non-negative fraction\n");
        return 2;
      }
    } else if (Arg == "--goldens") {
      const char *V = NextVal("--goldens");
      if (!V)
        return 2;
      GoldenDir = V;
    } else if (Arg == "--json") {
      const char *V = NextVal("--json");
      if (!V)
        return 2;
      JsonPath = V;
    } else if (Arg == "--alu-tol") {
      const char *V = NextVal("--alu-tol");
      if (!V)
        return 2;
      char *End = nullptr;
      Opts.AluUtilDropTol = std::strtod(V, &End);
      // Utilization is a ratio: a tolerance outside [0, 1) disables the
      // gate entirely, which must be an explicit --no-claims, not a
      // unit mix-up (2 for 2%).
      if (*End != '\0' || Opts.AluUtilDropTol < 0.0 ||
          Opts.AluUtilDropTol >= 1.0) {
        std::fprintf(stderr, "--alu-tol expects a fraction in [0, 1)\n");
        return 2;
      }
    } else if (Arg == "--db-slack") {
      const char *V = NextVal("--db-slack");
      if (!V)
        return 2;
      char *End = nullptr;
      Opts.DivergentBranchSlack = std::strtoull(V, &End, 10);
      if (*End != '\0' || *V == '-') {
        std::fprintf(stderr, "--db-slack expects a non-negative integer\n");
        return 2;
      }
    } else if (Arg == "--mem-tol") {
      const char *V = NextVal("--mem-tol");
      if (!V)
        return 2;
      char *End = nullptr;
      Opts.MemInstIncreaseTol = std::strtod(V, &End);
      if (*End != '\0' || Opts.MemInstIncreaseTol < 0.0) {
        std::fprintf(stderr,
                     "--mem-tol expects a non-negative fraction (e.g. 0.03)\n");
        return 2;
      }
    } else if (Arg == "--cache") {
      UseCache = true;
    } else if (Arg == "--no-cache") {
      NoCache = true;
    } else if (Arg == "--cache-stats") {
      CacheStats = true;
    } else if (Arg == "--measure-twice") {
      MeasureTwice = true;
    } else if (Arg == "--no-claims") {
      RunClaims = false;
    } else if (Arg == "--attribution") {
      Attribution = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "-help" || Arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return usage(argv[0]);
    }
  }

  if (!CompareOld.empty())
    return compareArtifacts(CompareOld, CompareNew, CompareTol, Quiet);

  if (Attribution && !GoldenDir.empty()) {
    // The benchmark goldens record the claimConfigs() rows; measuring a
    // different config set under --goldens would diff apples to oranges.
    std::fprintf(stderr, "--attribution cannot be combined with --goldens\n");
    return 2;
  }

  const bool Regen = std::getenv("DARM_REGEN_GOLDENS") != nullptr;
  if (Regen && !GoldenDir.empty() && Shards > 1) {
    std::fprintf(stderr,
                 "refusing to regenerate goldens from a sharded run — a "
                 "shard sees only part of the corpus\n");
    return 2;
  }

  // ---- measure ----------------------------------------------------------
  std::vector<KernelClaims> Measured;
  std::vector<BenchCell> Cells = benchmarkCorpus();
  if (!BenchNames.empty()) {
    std::vector<BenchCell> Filtered;
    for (const BenchCell &Cell : Cells)
      for (const std::string &N : BenchNames)
        if (Cell.Name == N)
          Filtered.push_back(Cell);
    if (Filtered.empty()) {
      std::fprintf(stderr, "no corpus cells match --benchmarks\n");
      return 2;
    }
    Cells = Filtered;
  }
  std::vector<BenchCell> SelCells;
  for (size_t I = 0; I < Cells.size(); ++I)
    if (inShard(I, Shards, ShardIdx))
      SelCells.push_back(Cells[I]);
  std::vector<uint64_t> SelSeeds;
  for (uint64_t Seed = FuzzLo; Seed < FuzzHi; ++Seed)
    if (inShard(Seed, Shards, ShardIdx))
      SelSeeds.push_back(Seed);

  // The corpus fans out over the in-process pool ((cell|seed) x config
  // work units); results and progress come back in corpus order, so the
  // gates below and the JSON artifact are byte-identical at any --jobs.
  ThreadPool Pool(Jobs);
  if (MeasureTwice && !NoCache)
    UseCache = true; // a second pass over a cold cache proves nothing
  if (NoCache)
    UseCache = false;
  CompileService Cache;
  CompileService *CachePtr = UseCache ? &Cache : nullptr;

  auto Measure = [&](bool Progress) {
    uint64_t FuzzDone = 0;
    return measureCorpus(Pool, SelCells, SelSeeds,
                         Attribution ? attributionConfigs() : claimConfigs(),
                         [&](const KernelClaims &K) {
                           if (Quiet || !Progress)
                             return;
                           if (K.BlockSize != 0) {
                             std::fprintf(stderr, "measured %s/bs%u\n",
                                          K.Kernel.c_str(), K.BlockSize);
                           } else if (++FuzzDone % 250 == 1) {
                             std::fprintf(stderr,
                                          "measured %llu fuzz seeds...\n",
                                          static_cast<unsigned long long>(
                                              FuzzDone));
                           }
                         },
                         CachePtr);
  };
  Measured = Measure(/*Progress=*/true);
  if (MeasureTwice) {
    // Cache-coherence gate: the same corpus measured again in the same
    // process — now (with --cache) served from the warm cache — must
    // reproduce the darm-claims-v1 artifact byte for byte.
    GoldenFile Cold;
    Cold.Kernels = Measured;
    std::vector<KernelClaims> Warm = Measure(/*Progress=*/false);
    GoldenFile WarmG;
    WarmG.Kernels = Warm;
    if (toJson(Cold) != toJson(WarmG)) {
      std::fprintf(stderr,
                   "CACHE COHERENCE FAILURE: cold and warm passes disagree\n");
      return 1;
    }
    if (!Quiet)
      std::fprintf(stderr,
                   "cache-coherence: cold and warm passes byte-identical "
                   "(%zu kernels)\n",
                   Measured.size());
    Measured = std::move(Warm);
  }
  if (CacheStats) {
    const CompileService::CacheStats CS = Cache.stats();
    std::printf("CACHE entries=%llu bytes=%llu hits=%llu misses=%llu "
                "upgrades=%llu disk_hits=%llu oversized=%llu "
                "evictions=%llu duplicate_compiles=%llu hit_rate=%.4f\n",
                static_cast<unsigned long long>(CS.Entries),
                static_cast<unsigned long long>(CS.Bytes),
                static_cast<unsigned long long>(CS.Hits),
                static_cast<unsigned long long>(CS.Misses),
                static_cast<unsigned long long>(CS.Upgrades),
                static_cast<unsigned long long>(CS.DiskHits),
                static_cast<unsigned long long>(CS.Oversized),
                static_cast<unsigned long long>(CS.Evictions),
                static_cast<unsigned long long>(CS.DuplicateCompiles),
                CS.hitRate());
  }
  if (Measured.empty()) {
    // Same guard as darm_fuzz: filters that leave nothing measured must
    // not report a clean conformance pass.
    std::fprintf(stderr,
                 "shard %u of %u selects no corpus cell or fuzz seed — "
                 "nothing was tested\n",
                 ShardIdx, Shards);
    return 2;
  }

  // ---- plausibility gate ------------------------------------------------
  // Benchmarks use the strict (CLI-tunable) tolerances; fuzz kernels use
  // the generated-kernel pathology-alarm profile per seed, plus a strict
  // gate on the population aggregate — the direction the paper actually
  // claims (see ClaimsOptions::forGeneratedKernels).
  unsigned Failures = 0;
  if (RunClaims) {
    const ClaimsOptions FuzzOpts = ClaimsOptions::forGeneratedKernels();
    std::vector<KernelClaims> FuzzMeasured;
    for (const KernelClaims &K : Measured) {
      const bool IsFuzz = K.BlockSize == 0;
      if (IsFuzz)
        FuzzMeasured.push_back(K);
      for (const Violation &V : checkClaims(K, IsFuzz ? FuzzOpts : Opts)) {
        std::fprintf(stderr, "CLAIM VIOLATION %s\n", V.str().c_str());
        ++Failures;
      }
    }
    if (!FuzzMeasured.empty()) {
      char Name[80];
      if (Shards > 1)
        std::snprintf(Name, sizeof(Name), "fuzz-aggregate[%llu:%llu)%%%u:%u",
                      static_cast<unsigned long long>(FuzzLo),
                      static_cast<unsigned long long>(FuzzHi), Shards,
                      ShardIdx);
      else
        std::snprintf(Name, sizeof(Name), "fuzz-aggregate[%llu:%llu)",
                      static_cast<unsigned long long>(FuzzLo),
                      static_cast<unsigned long long>(FuzzHi));
      KernelClaims Agg = aggregateClaims(FuzzMeasured, Name);
      // The aggregate gate is statistical: the paper's direction holds
      // over a *population*, not over a shard's slice or a smoke-sized
      // window where a handful of guard branches can outweigh the
      // melding wins (seeds [0,100) measure +4 divergent branches;
      // [0,2000) measure -267). Small or sharded runs record the
      // aggregate in the JSON artifact without gating on it.
      constexpr size_t MinAggregatePopulation = 500;
      if (Shards > 1 || FuzzMeasured.size() < MinAggregatePopulation) {
        if (!Quiet)
          std::fprintf(stderr,
                       "%s: skipping the population aggregate gate "
                       "(%s recorded in JSON only)\n",
                       Shards > 1 ? "sharded run" : "window below 500 seeds",
                       Name);
      } else {
        for (const Violation &V :
             checkClaims(Agg, ClaimsOptions::forGeneratedAggregate())) {
          std::fprintf(stderr, "CLAIM VIOLATION %s\n", V.str().c_str());
          ++Failures;
        }
      }
      // The per-pass attribution summary (docs/passes.md): how each
      // canonicalization toggle moved the aggregate melding-efficacy
      // metrics relative to this run's own unmelded reference. Printed,
      // never gated — the strict population gate lives in claims_test.
      if (Attribution) {
        const ConfigMetrics *Ref = nullptr;
        for (const ConfigMetrics &C : Agg.Configs)
          if (C.Config == "unmelded")
            Ref = &C;
        if (Ref && Ref->Stats.DivergentBranches != 0) {
          for (const ConfigMetrics &C : Agg.Configs) {
            if (C.Config == "unmelded")
              continue;
            std::printf(
                "ATTRIBUTION %s %s: db_ratio=%.4f alu_delta=%+.4f "
                "mem_insts=%llu\n",
                Name, C.Config.c_str(),
                static_cast<double>(C.Stats.DivergentBranches) /
                    static_cast<double>(Ref->Stats.DivergentBranches),
                C.Stats.aluUtilization() - Ref->Stats.aluUtilization(),
                static_cast<unsigned long long>(C.Stats.VectorMemInsts +
                                                C.Stats.SharedMemInsts));
          }
        }
      }
      Measured.push_back(std::move(Agg)); // keep it in the JSON artifact
    }
  }

  // ---- golden regression gate ------------------------------------------
  // Goldens cover the deterministic benchmark corpus only (one file per
  // benchmark). Fuzz cells vary with the swept window, so they are gated
  // by the plausibility checks above; the pinned-seed fuzz golden is
  // owned by tests/claims_test.cpp.
  if (!GoldenDir.empty()) {
    std::map<std::string, std::vector<KernelClaims>> ByFile;
    for (const KernelClaims &K : Measured)
      if (K.BlockSize != 0)
        ByFile[K.Kernel].push_back(K);

    for (const auto &[Key, Kernels] : ByFile) {
      const std::string Path = GoldenDir + "/" + Key + ".json";
      if (Regen) {
        GoldenFile G;
        G.Kernels = Kernels;
        std::string Err;
        if (!saveGoldenFile(Path, G, &Err)) {
          std::fprintf(stderr, "%s\n", Err.c_str());
          return 2;
        }
        if (!Quiet)
          std::fprintf(stderr, "regenerated %s\n", Path.c_str());
        continue;
      }
      GoldenFile G;
      std::string Err;
      if (!loadGoldenFile(Path, G, &Err)) {
        std::fprintf(stderr, "GOLDEN LOAD FAILED %s: %s\n", Path.c_str(),
                     Err.c_str());
        ++Failures;
        continue;
      }
      // A shard measures only part of the corpus; diff only what ran.
      if (Shards > 1) {
        GoldenFile Partial;
        for (const KernelClaims &GK : G.Kernels)
          for (const KernelClaims &MK : Kernels)
            if (GK.cellName() == MK.cellName())
              Partial.Kernels.push_back(GK);
        G = std::move(Partial);
      }
      for (const std::string &Line : diffClaims(G, Kernels)) {
        std::fprintf(stderr, "GOLDEN DIFF %s\n", Line.c_str());
        ++Failures;
      }
    }

    // A full, unfiltered run must also notice *orphaned* golden files —
    // a benchmark renamed out of the corpus would otherwise leave its
    // recorded golden green-but-unchecked forever. fuzz.json is owned
    // by tests/claims_test.cpp (pinned seeds), not this tool.
    if (!Regen && Shards == 1 && BenchNames.empty()) {
      std::error_code EC;
      for (const auto &Entry :
           std::filesystem::directory_iterator(GoldenDir, EC)) {
        if (Entry.path().extension() != ".json")
          continue;
        const std::string Key = Entry.path().stem().string();
        if (Key == "fuzz" || ByFile.count(Key))
          continue;
        std::fprintf(stderr,
                     "GOLDEN ORPHAN %s: recorded but no such kernel in the "
                     "corpus\n",
                     Entry.path().string().c_str());
        ++Failures;
      }
      if (EC) {
        std::fprintf(stderr, "cannot enumerate '%s': %s\n", GoldenDir.c_str(),
                     EC.message().c_str());
        ++Failures;
      }
    }
  }

  // ---- JSON artifact ----------------------------------------------------
  if (!JsonPath.empty()) {
    GoldenFile G;
    G.Kernels = Measured;
    std::string Err;
    if (!saveGoldenFile(JsonPath, G, &Err)) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 2;
    }
  }

  if (Failures) {
    std::fprintf(stderr, "%u failure(s) over %zu measured kernel(s)\n",
                 Failures, Measured.size());
    return 1;
  }
  std::printf("all %zu kernel(s) conform (%s%s)\n", Measured.size(),
              RunClaims ? "claims" : "no claims gate",
              GoldenDir.empty() ? "" : " + goldens");
  return 0;
}
